//! Shot allocation across tomography settings.
//!
//! The paper uses a uniform budget (1000 or 10 000 shots per subcircuit).
//! Uniform is not variance-optimal: the upstream `Z` setting feeds *two*
//! reconstruction strings per cut (`I` and `Z`), and downstream
//! preparations are reused by every string whose prep pair contains them,
//! so settings differ in how many contraction terms consume their data.
//! [`ShotAllocation::WeightedByUsage`] splits a total budget
//! proportionally to that usage count; the ablation benches compare it
//! against the paper's uniform scheme.
//!
//! [`ShotAllocation::Adaptive`] goes one step further: usage counts are
//! static, but the *measured* variance of the pilot tensors is not. The
//! pipeline runs a small uniform pilot round, scores each setting's
//! variance contribution from the empirical tensors
//! ([`crate::variance::neyman_scores`]), and spends the remaining budget
//! Neyman-style (`N ∝ √(usage · |coeff|² · σ̂²)`) in a second engine round
//! seeded from the pilot's measurements.
//!
//! Budget totals are exact: non-uniform splits use largest-remainder
//! apportionment, so every policy schedules *exactly* the shots it was
//! asked for (property-tested in `tests/integration_allocation.rs`).
//! Under-sized budgets are a typed [`AllocationError`], surfaced by the
//! pipeline as [`crate::error::PipelineError::Allocation`].
//!
//! # Example
//!
//! Scheduling is deterministic given a plan, so policies can be compared
//! before anything executes:
//!
//! ```
//! use qcut_core::allocation::{schedule_for_plan, ShotAllocation};
//! use qcut_core::basis::BasisPlan;
//!
//! let plan = BasisPlan::standard(1); // 3 measurements + 6 preparations
//! let weighted =
//!     schedule_for_plan(&plan, ShotAllocation::WeightedByUsage { total: 9_000 }).unwrap();
//! // Largest-remainder apportionment spends the budget exactly …
//! assert_eq!(weighted.total(), 9_000);
//! // … and the Z setting (read by the I *and* Z strings) out-earns X/Y.
//! assert_eq!(weighted.max_shots(), *weighted.upstream.iter().max().unwrap());
//!
//! // Adaptive degenerates to the single-round policies at the edges:
//! let all_pilot = ShotAllocation::Adaptive { pilot_fraction: 1.0, total: 9_000 };
//! assert_eq!(
//!     all_pilot.normalized(),
//!     ShotAllocation::TotalBudget { total: 9_000 }
//! );
//! ```

use crate::basis::{encode_meas, encode_prep, BasisPlan};
use crate::sic::all_sic_settings;
use crate::tomography::ExperimentPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// How to distribute shots over the subcircuit settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShotAllocation {
    /// The paper's scheme: the same budget for every setting.
    Uniform {
        /// Shots per subcircuit.
        shots_per_setting: u64,
    },
    /// A fixed total budget divided evenly (rounded down, remainder to the
    /// earliest settings).
    TotalBudget {
        /// Total shots across all subcircuits.
        total: u64,
    },
    /// A fixed total budget divided proportionally to how many
    /// reconstruction terms consume each setting's data.
    WeightedByUsage {
        /// Total shots across all subcircuits.
        total: u64,
    },
    /// Two-round variance-adaptive allocation: a uniform pilot round of
    /// `pilot_fraction · total` shots builds empirical fragment tensors,
    /// then the remaining budget is apportioned Neyman-style
    /// (`N ∝ √(usage · |coeff|² · σ̂²)`, see
    /// [`crate::variance::neyman_scores`]) and executed as a second engine
    /// round seeded from the pilot's measurements.
    ///
    /// Edge fractions degenerate to single-round policies (see
    /// [`ShotAllocation::normalized`]): `pilot_fraction ≤ 0` is
    /// [`ShotAllocation::WeightedByUsage`] (no pilot — fall back to the
    /// static usage weights), `pilot_fraction ≥ 1` is
    /// [`ShotAllocation::TotalBudget`] (the whole budget *is* the uniform
    /// pilot).
    Adaptive {
        /// Fraction of `total` spent on the uniform pilot round.
        pilot_fraction: f64,
        /// Total shots across all subcircuits and both rounds.
        total: u64,
    },
}

impl ShotAllocation {
    /// Resolves the degenerate [`ShotAllocation::Adaptive`] fractions into
    /// the single-round policies they are bit-identical to; every other
    /// policy (and interior fractions) is returned unchanged. The pipeline
    /// normalizes before scheduling, so `Adaptive { pilot_fraction: 0.0 }`
    /// runs *exactly* the `WeightedByUsage` path and
    /// `Adaptive { pilot_fraction: 1.0 }` *exactly* the even
    /// `TotalBudget` split (pinned in `tests/integration_allocation.rs`).
    pub fn normalized(self) -> ShotAllocation {
        match self {
            ShotAllocation::Adaptive {
                pilot_fraction,
                total,
            } if pilot_fraction <= 0.0 => ShotAllocation::WeightedByUsage { total },
            ShotAllocation::Adaptive {
                pilot_fraction,
                total,
            } if pilot_fraction >= 1.0 => ShotAllocation::TotalBudget { total },
            other => other,
        }
    }
}

/// The pilot round's budget: `round(pilot_fraction · total)`, clamped to
/// the total. Callers should [`ShotAllocation::normalized`] first — this
/// helper is only meaningful for interior fractions.
pub fn pilot_total(pilot_fraction: f64, total: u64) -> u64 {
    ((total as f64 * pilot_fraction).round() as u64).min(total)
}

/// A schedule request that cannot be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationError {
    /// The total budget cannot give every setting at least one shot.
    BudgetTooSmall {
        /// The requested total.
        total: u64,
        /// Number of settings that must each receive ≥ 1 shot.
        settings: usize,
    },
    /// An adaptive pilot round cannot give every setting at least one
    /// shot, so no empirical tensor could be built from it.
    PilotBudgetTooSmall {
        /// The pilot budget (`round(pilot_fraction · total)`).
        pilot: u64,
        /// Number of settings the pilot must cover with ≥ 1 shot.
        settings: usize,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::BudgetTooSmall { total, settings } => write!(
                f,
                "shot budget {total} cannot cover {settings} settings with at \
                 least one shot each; raise the total or shrink the plan"
            ),
            AllocationError::PilotBudgetTooSmall { pilot, settings } => write!(
                f,
                "adaptive pilot budget {pilot} cannot cover {settings} settings \
                 with at least one shot each; raise pilot_fraction or the total"
            ),
        }
    }
}

impl std::error::Error for AllocationError {}

/// Concrete per-setting shot counts, aligned with an [`ExperimentPlan`]'s
/// variant order (equivalently [`BasisPlan::all_meas_settings`] /
/// [`BasisPlan::all_prep_settings`] order, which is how the plan builds
/// its variants; for SIC schedules the downstream half is aligned with
/// [`all_sic_settings`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShotSchedule {
    /// Shots for each upstream variant.
    pub upstream: Vec<u64>,
    /// Shots for each downstream variant.
    pub downstream: Vec<u64>,
}

impl ShotSchedule {
    /// The uniform schedule over `n_up + n_down` settings.
    pub fn uniform(n_up: usize, n_down: usize, shots_per_setting: u64) -> Self {
        ShotSchedule {
            upstream: vec![shots_per_setting; n_up],
            downstream: vec![shots_per_setting; n_down],
        }
    }

    /// Total shots in the schedule.
    pub fn total(&self) -> u64 {
        self.upstream.iter().sum::<u64>() + self.downstream.iter().sum::<u64>()
    }

    /// Smallest per-setting budget (0 means a starved setting — invalid
    /// for reconstruction).
    pub fn min_shots(&self) -> u64 {
        self.upstream
            .iter()
            .chain(&self.downstream)
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// Largest per-setting budget.
    pub fn max_shots(&self) -> u64 {
        self.upstream
            .iter()
            .chain(&self.downstream)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Number of settings the schedule covers.
    pub fn num_settings(&self) -> usize {
        self.upstream.len() + self.downstream.len()
    }
}

/// How many reconstruction strings read each upstream setting and how many
/// signed prep combinations read each downstream preparation.
pub fn usage_counts(plan: &BasisPlan) -> (HashMap<u64, u64>, HashMap<u64, u64>) {
    let mut upstream: HashMap<u64, u64> = HashMap::new();
    let mut downstream: HashMap<u64, u64> = HashMap::new();
    let num_cuts = plan.num_cuts();
    for m in plan.all_recon_strings() {
        *upstream
            .entry(encode_meas(&plan.setting_for(&m)))
            .or_insert(0) += 1;
        // Each string consumes 2^K prep combinations.
        let pairs: Vec<_> = (0..num_cuts).map(|k| plan.prep_pair(k, m[k])).collect();
        for combo in 0..(1usize << num_cuts) {
            let states: Vec<_> = pairs
                .iter()
                .enumerate()
                .map(|(k, pair)| pair[(combo >> k) & 1].0)
                .collect();
            *downstream.entry(encode_prep(&states)).or_insert(0) += 1;
        }
    }
    (upstream, downstream)
}

/// Splits `total` over the weight vector with largest-remainder
/// apportionment: quotas `total·wᵢ/Σw` are floored and the leftover shots
/// go to the largest fractional parts (ties to the earliest setting), so
/// the result always sums to exactly `total`.
fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let weight_sum: f64 = weights.iter().sum();
    if weight_sum <= 0.0 {
        // Degenerate weights: fall back to an even split.
        return apportion(total, &vec![1.0; weights.len()]);
    }
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fractions: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let quota = total as f64 * w / weight_sum;
        let floor = quota.floor().min(total as f64) as u64;
        out.push(floor);
        assigned += floor;
        fractions.push((quota - floor as f64, i));
    }
    // Floating-point floors can only undershoot the target by < n; hand the
    // leftovers to the largest remainders, earliest index first on ties.
    let mut leftover = total.saturating_sub(assigned);
    fractions.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut cursor = 0usize;
    while leftover > 0 {
        out[fractions[cursor % fractions.len()].1] += 1;
        cursor += 1;
        leftover -= 1;
    }
    out
}

/// The weighted scheduling core shared by every non-uniform policy: checks
/// the budget, reserves one shot per setting, apportions the spare by
/// weight, and splits the result back into upstream/downstream halves.
fn schedule_weighted(
    total: u64,
    up_w: &[f64],
    down_w: &[f64],
) -> Result<ShotSchedule, AllocationError> {
    let n_total = up_w.len() + down_w.len();
    if total < n_total as u64 {
        return Err(AllocationError::BudgetTooSmall {
            total,
            settings: n_total,
        });
    }
    // Reserve one shot per setting, distribute the rest by weight with an
    // exact largest-remainder split.
    let spare = total - n_total as u64;
    let weights: Vec<f64> = up_w.iter().chain(down_w).copied().collect();
    let split = apportion(spare, &weights);
    let upstream: Vec<u64> = split[..up_w.len()].iter().map(|&s| s + 1).collect();
    let downstream: Vec<u64> = split[up_w.len()..].iter().map(|&s| s + 1).collect();
    Ok(ShotSchedule {
        upstream,
        downstream,
    })
}

/// Builds the uniform pilot schedule of a two-round adaptive run: an even
/// largest-remainder split of `pilot` shots over `n_up + n_down` settings
/// (the same division rule as [`ShotAllocation::TotalBudget`], so every
/// setting delivers enough data to estimate its tensor entries). A pilot
/// that cannot give each setting one shot is a typed
/// [`AllocationError::PilotBudgetTooSmall`].
pub fn pilot_schedule(
    n_up: usize,
    n_down: usize,
    pilot: u64,
) -> Result<ShotSchedule, AllocationError> {
    let n_total = n_up + n_down;
    if pilot < n_total as u64 {
        return Err(AllocationError::PilotBudgetTooSmall {
            pilot,
            settings: n_total,
        });
    }
    let split = apportion(pilot, &vec![1.0; n_total]);
    Ok(ShotSchedule {
        upstream: split[..n_up].to_vec(),
        downstream: split[n_up..].to_vec(),
    })
}

/// Folds the refine round into a pilot schedule: `remaining` shots are
/// apportioned over the per-setting Neyman scores (largest-remainder, so
/// the refine half spends exactly `remaining`) and added to the pilot
/// budgets. The result is the *cumulative* per-setting target the second
/// engine round requests — seeded with the pilot's measurements, the
/// engine then executes exactly the refine increments
/// (`pilot.total() + remaining` in total across both rounds).
///
/// All-zero scores (a pilot that saw no variance anywhere) fall back to an
/// even refine split; a zero-score *setting* simply gets no refine shots —
/// its pilot data already pins a coefficient the contraction barely reads.
pub fn refine_schedule(
    pilot: &ShotSchedule,
    up_scores: &[f64],
    down_scores: &[f64],
    remaining: u64,
) -> ShotSchedule {
    assert_eq!(pilot.upstream.len(), up_scores.len(), "schedule arity");
    assert_eq!(pilot.downstream.len(), down_scores.len(), "schedule arity");
    let scores: Vec<f64> = up_scores.iter().chain(down_scores).copied().collect();
    let split = apportion(remaining, &scores);
    ShotSchedule {
        upstream: pilot
            .upstream
            .iter()
            .zip(&split[..up_scores.len()])
            .map(|(&p, &r)| p + r)
            .collect(),
        downstream: pilot
            .downstream
            .iter()
            .zip(&split[up_scores.len()..])
            .map(|(&p, &r)| p + r)
            .collect(),
    }
}

/// How the downstream settings weigh in under
/// [`ShotAllocation::WeightedByUsage`].
#[derive(Clone, Copy)]
enum DownstreamKeys<'a> {
    /// Eigenstate preparations, usage-weighted by their [`encode_prep`]
    /// keys (in emission order).
    Keyed(&'a [u64]),
    /// `n` SIC preparations: informationally complete, so every
    /// reconstruction string reads every preparation through the frame
    /// solve and their usage is uniform by construction.
    UniformWeight(usize),
}

impl DownstreamKeys<'_> {
    fn len(&self) -> usize {
        match self {
            DownstreamKeys::Keyed(keys) => keys.len(),
            DownstreamKeys::UniformWeight(n) => *n,
        }
    }
}

/// Builds a schedule given the plan's upstream/downstream setting keys (in
/// emission order) and an allocation policy.
fn schedule_for_keys(
    basis: &BasisPlan,
    up_keys: &[u64],
    down_keys: DownstreamKeys<'_>,
    allocation: ShotAllocation,
) -> Result<ShotSchedule, AllocationError> {
    let n_up = up_keys.len();
    let n_down = down_keys.len();
    match allocation.normalized() {
        ShotAllocation::Uniform { shots_per_setting } => {
            Ok(ShotSchedule::uniform(n_up, n_down, shots_per_setting))
        }
        ShotAllocation::TotalBudget { total } => {
            // Even split == equal weights, *without* the reserve-one step so
            // the division stays `base + remainder to the earliest settings`
            // (bit-identical to the historical behaviour).
            let n_total = n_up + n_down;
            if total < n_total as u64 {
                return Err(AllocationError::BudgetTooSmall {
                    total,
                    settings: n_total,
                });
            }
            let split = apportion(total, &vec![1.0; n_total]);
            Ok(ShotSchedule {
                upstream: split[..n_up].to_vec(),
                downstream: split[n_up..].to_vec(),
            })
        }
        ShotAllocation::WeightedByUsage { total } => {
            let (up_w, down_w) = usage_weights(basis, up_keys, &down_keys);
            schedule_weighted(total, &up_w, &down_w)
        }
        // Interior pilot fractions (the edges were normalized away above).
        // Without pilot data there is no measured variance yet, so the
        // planning-time surrogate refines by the static usage weights —
        // the pipeline replaces this with the empirical Neyman scores
        // after the pilot round executes.
        ShotAllocation::Adaptive {
            pilot_fraction,
            total,
        } => {
            let pilot = pilot_total(pilot_fraction, total);
            let pilot_sched = pilot_schedule(n_up, n_down, pilot)?;
            let (up_w, down_w) = usage_weights(basis, up_keys, &down_keys);
            Ok(refine_schedule(&pilot_sched, &up_w, &down_w, total - pilot))
        }
    }
}

/// The static usage weights shared by [`ShotAllocation::WeightedByUsage`]
/// and the planning-time [`ShotAllocation::Adaptive`] surrogate.
fn usage_weights(
    basis: &BasisPlan,
    up_keys: &[u64],
    down_keys: &DownstreamKeys<'_>,
) -> (Vec<f64>, Vec<f64>) {
    let (up_usage, down_usage) = usage_counts(basis);
    let up_w: Vec<f64> = up_keys
        .iter()
        .map(|k| up_usage.get(k).copied().unwrap_or(1) as f64)
        .collect();
    let down_w: Vec<f64> = match down_keys {
        DownstreamKeys::Keyed(keys) => keys
            .iter()
            .map(|k| down_usage.get(k).copied().unwrap_or(1) as f64)
            .collect(),
        DownstreamKeys::UniformWeight(n) => vec![1.0; *n],
    };
    (up_w, down_w)
}

/// Builds the concrete schedule for an eigenstate experiment plan and an
/// allocation policy. The schedule is aligned with `experiment`'s variant
/// order.
pub fn schedule(
    basis: &BasisPlan,
    experiment: &ExperimentPlan,
    allocation: ShotAllocation,
) -> Result<ShotSchedule, AllocationError> {
    let up_keys: Vec<u64> = experiment
        .upstream
        .iter()
        .map(|v| encode_meas(&v.setting))
        .collect();
    let down_keys: Vec<u64> = experiment
        .downstream
        .iter()
        .map(|v| encode_prep(&v.preparation))
        .collect();
    schedule_for_keys(
        basis,
        &up_keys,
        DownstreamKeys::Keyed(&down_keys),
        allocation,
    )
}

/// Builds the eigenstate-gather schedule straight from a [`BasisPlan`]
/// (no subcircuits constructed): `upstream[i]` pairs with the i-th entry
/// of [`BasisPlan::all_meas_settings`], `downstream[i]` with the i-th of
/// [`BasisPlan::all_prep_settings`] — the same order the planner's
/// [`crate::planner::add_upstream_jobs`]/[`crate::planner::add_downstream_jobs`]
/// consume.
pub fn schedule_for_plan(
    basis: &BasisPlan,
    allocation: ShotAllocation,
) -> Result<ShotSchedule, AllocationError> {
    let up_keys: Vec<u64> = basis
        .all_meas_settings()
        .iter()
        .map(|s| encode_meas(s))
        .collect();
    let down_keys: Vec<u64> = basis
        .all_prep_settings()
        .iter()
        .map(|s| encode_prep(s))
        .collect();
    schedule_for_keys(
        basis,
        &up_keys,
        DownstreamKeys::Keyed(&down_keys),
        allocation,
    )
}

/// Builds the SIC-gather schedule from a [`BasisPlan`]: `upstream[i]`
/// pairs with the i-th measurement setting, `downstream[i]` with the i-th
/// of the `4^K` [`all_sic_settings`] combinations. SIC preparations carry
/// uniform weight under [`ShotAllocation::WeightedByUsage`] (each one
/// feeds every reconstruction string through the frame solve), so only
/// the upstream half is skewed.
pub fn schedule_sic(
    basis: &BasisPlan,
    allocation: ShotAllocation,
) -> Result<ShotSchedule, AllocationError> {
    let up_keys: Vec<u64> = basis
        .all_meas_settings()
        .iter()
        .map(|s| encode_meas(s))
        .collect();
    let n_down = all_sic_settings(basis.num_cuts()).len();
    schedule_for_keys(
        basis,
        &up_keys,
        DownstreamKeys::UniformWeight(n_down),
        allocation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_math::Pauli;

    fn plan_pair(golden: bool) -> (BasisPlan, ExperimentPlan) {
        let (c, spec) = GoldenAnsatz::new(5, 1).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let basis = if golden {
            BasisPlan::with_neglected(vec![Some(Pauli::Y)])
        } else {
            BasisPlan::standard(1)
        };
        let experiment = ExperimentPlan::build(&frags, &basis);
        (basis, experiment)
    }

    #[test]
    fn uniform_schedule_matches_paper() {
        let (basis, experiment) = plan_pair(false);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::Uniform {
                shots_per_setting: 1000,
            },
        )
        .unwrap();
        assert_eq!(s.upstream, vec![1000; 3]);
        assert_eq!(s.downstream, vec![1000; 6]);
        assert_eq!(s.total(), 9000);
    }

    #[test]
    fn total_budget_is_exactly_spent() {
        let (basis, experiment) = plan_pair(false);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::TotalBudget { total: 9005 },
        )
        .unwrap();
        assert_eq!(s.total(), 9005);
        // No setting starves and the split is near-even, remainder to the
        // earliest settings.
        assert!(s.min_shots() >= 1000);
        assert!(s.upstream.iter().chain(&s.downstream).all(|&n| n <= 1001));
        assert_eq!(s.upstream, vec![1001, 1001, 1001]);
        assert_eq!(s.downstream, vec![1001, 1001, 1000, 1000, 1000, 1000]);
    }

    #[test]
    fn usage_counts_single_cut() {
        // Standard single cut: Z setting feeds I and Z strings (2), X and Y
        // feed one each; preps: Zp/Zm serve I and Z strings × 2 combos = 4
        // reads... concretely: each of the 4 strings reads 2 preps.
        let basis = BasisPlan::standard(1);
        let (up, down) = usage_counts(&basis);
        use crate::basis::MeasBasis;
        assert_eq!(up[&encode_meas(&[MeasBasis::Z])], 2);
        assert_eq!(up[&encode_meas(&[MeasBasis::X])], 1);
        assert_eq!(up[&encode_meas(&[MeasBasis::Y])], 1);
        // Total downstream reads = 4 strings × 2 preps = 8.
        let total: u64 = down.values().sum();
        assert_eq!(total, 8);
        // Zp is read by I and Z -> 2; Xp only by X -> 1.
        use qcut_math::PrepState;
        assert_eq!(down[&encode_prep(&[PrepState::Zp])], 2);
        assert_eq!(down[&encode_prep(&[PrepState::Xp])], 1);
    }

    #[test]
    fn weighted_schedule_favours_z_setting_and_spends_exactly() {
        let (basis, experiment) = plan_pair(false);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::WeightedByUsage { total: 90_000 },
        )
        .unwrap();
        // Find the Z setting's index.
        use crate::basis::MeasBasis;
        let z_idx = experiment
            .upstream
            .iter()
            .position(|v| v.setting == vec![MeasBasis::Z])
            .unwrap();
        let x_idx = experiment
            .upstream
            .iter()
            .position(|v| v.setting == vec![MeasBasis::X])
            .unwrap();
        assert!(
            s.upstream[z_idx] > s.upstream[x_idx],
            "Z setting should get more shots: {:?}",
            s.upstream
        );
        // The historical floor() split silently dropped up to n−1 shots;
        // largest-remainder apportionment spends the budget exactly.
        assert_eq!(s.total(), 90_000);
    }

    #[test]
    fn weighted_schedule_on_golden_plan() {
        let (basis, experiment) = plan_pair(true);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::WeightedByUsage { total: 60_000 },
        )
        .unwrap();
        assert_eq!(s.upstream.len(), 2);
        assert_eq!(s.downstream.len(), 4);
        assert!(s.min_shots() > 0);
        assert_eq!(s.total(), 60_000);
    }

    #[test]
    fn schedule_for_plan_matches_experiment_schedule() {
        // The plan-only entry point must produce the same schedule as the
        // experiment-based one (the variants are built from the same
        // enumerations).
        let (basis, experiment) = plan_pair(false);
        for alloc in [
            ShotAllocation::Uniform {
                shots_per_setting: 700,
            },
            ShotAllocation::TotalBudget { total: 9999 },
            ShotAllocation::WeightedByUsage { total: 12_345 },
        ] {
            assert_eq!(
                schedule_for_plan(&basis, alloc).unwrap(),
                schedule(&basis, &experiment, alloc).unwrap()
            );
        }
    }

    #[test]
    fn sic_schedule_shapes_and_totals() {
        let basis = BasisPlan::standard(1);
        let s = schedule_sic(&basis, ShotAllocation::WeightedByUsage { total: 7001 }).unwrap();
        assert_eq!(s.upstream.len(), 3);
        assert_eq!(s.downstream.len(), 4); // 4^1 SIC preps
        assert_eq!(s.total(), 7001);
        // SIC preparations are weighted uniformly: all equal budgets.
        assert!(s.downstream.windows(2).all(|w| w[0] == w[1]));
        // Upstream Z still wins (usage 2 vs 1).
        use crate::basis::MeasBasis;
        let z = basis
            .all_meas_settings()
            .iter()
            .position(|v| v == &vec![MeasBasis::Z])
            .unwrap();
        assert_eq!(s.upstream[z], *s.upstream.iter().max().unwrap());
    }

    #[test]
    fn starved_budget_is_a_typed_error_per_policy() {
        let (basis, experiment) = plan_pair(false);
        // 9 settings: totals below 9 must fail for both total-budget
        // policies, with the exact shortfall reported.
        for alloc in [
            ShotAllocation::TotalBudget { total: 5 },
            ShotAllocation::WeightedByUsage { total: 8 },
        ] {
            let err = schedule(&basis, &experiment, alloc).unwrap_err();
            assert!(matches!(
                err,
                AllocationError::BudgetTooSmall { settings: 9, .. }
            ));
            assert!(err.to_string().contains("9 settings"));
        }
        // Uniform has no total to undershoot: it is infallible.
        assert!(schedule(
            &basis,
            &experiment,
            ShotAllocation::Uniform {
                shots_per_setting: 1
            }
        )
        .is_ok());
        // The exact boundary succeeds with one shot everywhere.
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::WeightedByUsage { total: 9 },
        )
        .unwrap();
        assert_eq!(s.total(), 9);
        assert_eq!(s.min_shots(), 1);
    }

    #[test]
    fn normalized_resolves_degenerate_adaptive_fractions() {
        let total = 5000;
        assert_eq!(
            ShotAllocation::Adaptive {
                pilot_fraction: 0.0,
                total
            }
            .normalized(),
            ShotAllocation::WeightedByUsage { total }
        );
        assert_eq!(
            ShotAllocation::Adaptive {
                pilot_fraction: 1.0,
                total
            }
            .normalized(),
            ShotAllocation::TotalBudget { total }
        );
        // Interior fractions and single-round policies pass through.
        let interior = ShotAllocation::Adaptive {
            pilot_fraction: 0.25,
            total,
        };
        assert_eq!(interior.normalized(), interior);
        let uniform = ShotAllocation::Uniform {
            shots_per_setting: 7,
        };
        assert_eq!(uniform.normalized(), uniform);
    }

    #[test]
    fn pilot_total_rounds_and_clamps() {
        assert_eq!(pilot_total(0.1, 1000), 100);
        assert_eq!(pilot_total(0.25, 9001), 2250);
        assert_eq!(pilot_total(0.999, 10), 10);
        assert_eq!(pilot_total(0.0, 1000), 0);
    }

    #[test]
    fn pilot_schedule_is_even_and_typed_on_starvation() {
        let s = pilot_schedule(3, 6, 9005).unwrap();
        assert_eq!(s.upstream.len(), 3);
        assert_eq!(s.downstream.len(), 6);
        assert_eq!(s.total(), 9005);
        assert!(s.max_shots() - s.min_shots() <= 1, "pilot must be even");
        let err = pilot_schedule(3, 6, 8).unwrap_err();
        assert!(matches!(
            err,
            AllocationError::PilotBudgetTooSmall {
                pilot: 8,
                settings: 9
            }
        ));
        assert!(err.to_string().contains("pilot_fraction"));
    }

    #[test]
    fn refine_schedule_is_cumulative_and_exact() {
        let pilot = ShotSchedule {
            upstream: vec![10, 10, 10],
            downstream: vec![10, 10],
        };
        // Skewed scores: the zero-score setting draws no refine shots but
        // keeps its pilot budget.
        let s = refine_schedule(&pilot, &[0.0, 3.0, 1.0], &[1.0, 1.0], 600);
        assert_eq!(s.total(), pilot.total() + 600);
        assert_eq!(s.upstream[0], 10);
        assert!(s.upstream[1] > s.upstream[2]);
        // All-zero scores fall back to an even refine split.
        let s = refine_schedule(&pilot, &[0.0; 3], &[0.0; 2], 500);
        assert_eq!(s.total(), pilot.total() + 500);
        assert_eq!(s.upstream, vec![110, 110, 110]);
    }

    #[test]
    fn adaptive_static_surrogate_spends_exactly() {
        // Without pilot data, scheduling an interior-fraction Adaptive
        // policy falls back to pilot-even + usage-weighted refine — and
        // still spends exactly its total.
        let (basis, experiment) = plan_pair(false);
        // pilot = ⌈0.2·total⌋ must cover the 9 settings, so total ≥ 45.
        for total in [45u64, 90, 9001, 90_000] {
            let s = schedule(
                &basis,
                &experiment,
                ShotAllocation::Adaptive {
                    pilot_fraction: 0.2,
                    total,
                },
            )
            .unwrap();
            assert_eq!(s.total(), total);
        }
        // A fraction that rounds the pilot below one-shot-per-setting is
        // the typed pilot error.
        let err = schedule(
            &basis,
            &experiment,
            ShotAllocation::Adaptive {
                pilot_fraction: 0.0001,
                total: 9000,
            },
        )
        .unwrap_err();
        assert!(matches!(err, AllocationError::PilotBudgetTooSmall { .. }));
    }

    #[test]
    fn apportion_is_exact_and_monotone_in_weight() {
        let got = apportion(100, &[1.0, 2.0, 1.0]);
        assert_eq!(got.iter().sum::<u64>(), 100);
        assert_eq!(got, vec![25, 50, 25]);
        // Awkward fractions still sum exactly.
        let got = apportion(10, &[1.0, 1.0, 1.0]);
        assert_eq!(got, vec![4, 3, 3]); // remainder to the earliest
        let got = apportion(7, &[0.3, 0.3, 0.4]);
        assert_eq!(got.iter().sum::<u64>(), 7);
        // Degenerate all-zero weights fall back to even.
        assert_eq!(apportion(6, &[0.0, 0.0, 0.0]), vec![2, 2, 2]);
        assert_eq!(apportion(5, &[]), Vec::<u64>::new());
    }
}
