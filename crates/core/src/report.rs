//! Run reports: everything the paper's figures plot.

use qcut_math::Pauli;
use serde::{Deserialize, Serialize};

/// Accounting of one cut-circuit execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of cuts `K`.
    pub num_cuts: usize,
    /// Neglected bases per cut (empty = regular cut).
    pub neglected: Vec<Vec<Pauli>>,
    /// Upstream measurement settings executed.
    pub upstream_settings: usize,
    /// Downstream preparations executed.
    pub downstream_settings: usize,
    /// Total subcircuits executed (`upstream + downstream`; the quantity
    /// the golden method shrinks 9 → 6 per cut).
    pub subcircuits_executed: usize,
    /// Total shots across all subcircuits (Fig. 5's 4.5e5 → 3.0e5).
    pub total_shots: u64,
    /// Terms in the reconstruction contraction (`4^{K_r} 3^{K_g}`).
    pub reconstruction_terms: usize,
    /// Simulated device occupation time in seconds (Fig. 5's wall time).
    pub simulated_device_seconds: f64,
    /// Host time gathering fragment data (classical simulation cost).
    pub gather_seconds: f64,
    /// Host time spent in classical reconstruction.
    pub reconstruct_seconds: f64,
    /// Extra shots spent by online golden detection (0 otherwise).
    pub detection_shots: u64,
    /// Host time spent detecting golden points.
    pub detection_seconds: f64,
}

impl RunReport {
    /// Total end-to-end host seconds (gather + reconstruct + detection) —
    /// the Fig. 4 quantity.
    pub fn total_host_seconds(&self) -> f64 {
        self.gather_seconds + self.reconstruct_seconds + self.detection_seconds
    }

    /// Number of golden cuts in this run.
    pub fn num_golden(&self) -> usize {
        self.neglected.iter().filter(|n| !n.is_empty()).count()
    }
}

/// Report for an uncut reference execution (the Fig. 3 baseline arm).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncutReport {
    /// Shots executed.
    pub shots: u64,
    /// Simulated device seconds.
    pub simulated_device_seconds: f64,
    /// Host seconds.
    pub host_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = RunReport {
            num_cuts: 1,
            neglected: vec![vec![Pauli::Y]],
            upstream_settings: 2,
            downstream_settings: 4,
            subcircuits_executed: 6,
            total_shots: 6000,
            reconstruction_terms: 3,
            simulated_device_seconds: 12.6,
            gather_seconds: 0.5,
            reconstruct_seconds: 0.1,
            detection_shots: 0,
            detection_seconds: 0.0,
        };
        assert!((r.total_host_seconds() - 0.6).abs() < 1e-12);
        assert_eq!(r.num_golden(), 1);
    }
}
