//! Run reports: everything the paper's figures plot.

use crate::allocation::ShotAllocation;
use crate::analysis::Diagnostic;
use crate::jobgraph::{Channel, NodeFailure};
use qcut_math::Pauli;
use serde::{Deserialize, Serialize};

/// One permanently failed engine node, as reported to callers: which
/// consumers (channel + setting key) lost their data, what the final
/// error was, and what it cost. Serializable so degraded runs can be
/// archived and audited like any other report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// The consumers this node was serving — i.e. which basis settings
    /// lost their data.
    pub consumers: Vec<(Channel, u64)>,
    /// Rendered backend error of the final attempt.
    pub error: String,
    /// Delivery attempts made before giving up.
    pub attempts: u32,
    /// Shots requested from this node and never delivered.
    pub shots_lost: u64,
}

impl From<&NodeFailure> for FailureRecord {
    fn from(f: &NodeFailure) -> Self {
        FailureRecord {
            consumers: f.consumers.clone(),
            error: f.error.to_string(),
            attempts: f.attempts,
            shots_lost: f.shots_lost,
        }
    }
}

/// Accounting of one cut-circuit execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of cuts `K`.
    pub num_cuts: usize,
    /// Neglected bases per cut (empty = regular cut).
    pub neglected: Vec<Vec<Pauli>>,
    /// The shot-allocation policy the gather was scheduled under.
    pub allocation: ShotAllocation,
    /// Upstream measurement settings executed.
    pub upstream_settings: usize,
    /// Downstream preparations executed.
    pub downstream_settings: usize,
    /// Total subcircuits executed (`upstream + downstream`; the quantity
    /// the golden method shrinks 9 → 6 per cut).
    pub subcircuits_executed: usize,
    /// Fresh device shots executed for the main gather round (Fig. 5's
    /// 4.5e5 → 3.0e5). Excludes [`RunReport::detection_shots`],
    /// [`RunReport::pilot_shots`], and anything the engine saved via
    /// dedup/reuse (see [`RunReport::shots_saved`]), so total device work
    /// is `detection_shots + pilot_shots + total_shots` with no
    /// double-counting of reused measurements.
    pub total_shots: u64,
    /// Fresh device shots executed by the uniform pilot round of a
    /// two-round [`crate::allocation::ShotAllocation::Adaptive`] run
    /// (0 on single-round policies).
    pub pilot_shots: u64,
    /// Gather rounds executed: 1 for every single-round policy, 2 for an
    /// adaptive pilot → refine run (online-detection batches are not
    /// gather rounds and are accounted separately).
    pub rounds: usize,
    /// Shots requested across every engine job of the run (detection
    /// rounds + pilot/gather fan-out edges, before dedup/reuse). The
    /// exact-accounting invariant is `shots_requested = detection_shots +
    /// pilot_shots + total_shots + shots_saved + cache_shots_reused +
    /// shots_lost`.
    pub shots_requested: u64,
    /// Jobs registered on the JobGraph engine across the whole run
    /// (detection rounds + gather fan-out edges).
    pub jobs_planned: usize,
    /// Unique jobs the engine actually submitted to the backend after
    /// structural dedup and cache reuse (`jobs_executed ≤ jobs_planned`).
    pub jobs_executed: usize,
    /// Shots the engine did *not* have to execute because structurally
    /// identical jobs were merged or same-run data (detection batches,
    /// the adaptive pilot) was reused. Cross-run warm-start reuse is
    /// accounted separately in [`RunReport::cache_shots_reused`].
    pub shots_saved: u64,
    /// Engine nodes whose histogram was served (at least partly) from the
    /// cross-run warm-start cache (0 when no cache was configured).
    pub cache_hits: u64,
    /// Shots served from persistent warm-start cache entries instead of
    /// being executed — the cross-run term of the accounting invariant on
    /// [`RunReport::shots_requested`].
    pub cache_shots_reused: u64,
    /// Simulator fork states served from the backend's tier-2 state cache
    /// across this run's batches (0 when the backend has none attached).
    pub states_reused: u64,
    /// Gate applications the backend performed simulating all engine
    /// batches of this run (shared circuit prefixes counted once on
    /// prefix-sharing backends).
    pub gates_applied: u64,
    /// Gate applications prefix sharing eliminated (`0` on non-sharing
    /// backends and sequential reference runs).
    pub gates_saved: u64,
    /// Terms in the reconstruction contraction (`4^{K_r} 3^{K_g}`).
    pub reconstruction_terms: usize,
    /// Simulated device occupation time in seconds (Fig. 5's wall time).
    pub simulated_device_seconds: f64,
    /// Host time gathering fragment data (classical simulation cost).
    pub gather_seconds: f64,
    /// Host time spent in classical reconstruction.
    pub reconstruct_seconds: f64,
    /// Extra shots spent by online golden detection (0 otherwise).
    pub detection_shots: u64,
    /// Host time spent detecting golden points.
    pub detection_seconds: f64,
    /// Total per-job delivery attempts across every engine submission of
    /// the run (`jobs_executed` when nothing was retried).
    pub attempts: u64,
    /// Job re-submissions after transient faults or timeouts.
    pub jobs_retried: u64,
    /// Shots requested from permanently failed nodes and never delivered
    /// — the loss term of the [`RunReport::shots_requested`] invariant.
    pub shots_lost: u64,
    /// Deterministic backoff accounting in seconds: what a wall-clock
    /// retry loop would have waited between attempts (never slept).
    pub backoff_seconds: f64,
    /// Jobs delivered by each [`qcut_device::pool::BackendPool`] member
    /// across the run's engine submissions, indexed by member position.
    /// Empty on single-backend runs. A job that failed over counts for
    /// the sibling that delivered it.
    pub jobs_per_member: Vec<u64>,
    /// Simulated device seconds each pool member spent (including
    /// timed-out attempts). The sharded wall-clock of the gather is the
    /// max entry; empty on single-backend runs.
    pub member_makespan_seconds: Vec<f64>,
    /// Σ member makespans / max member makespan: how evenly the pool's
    /// members shared the device time — `N` for a perfect `N`-way split,
    /// `1.0` on single-backend runs.
    pub pool_parallel_ratio: f64,
    /// Jobs a transiently failing pool member handed to a healthy sibling
    /// that then delivered them (0 on single-backend runs).
    pub jobs_failed_over: u64,
    /// True when permanent node failures were salvaged under
    /// [`crate::retry::FailurePolicy::Degrade`]: the affected basis
    /// settings were dropped, the reconstruction was renormalized over
    /// the surviving plan, and [`RunReport::failures`] itemises the
    /// damage.
    pub degraded: bool,
    /// Per-node failure records of a degraded run (empty when
    /// [`RunReport::degraded`] is false).
    pub failures: Vec<FailureRecord>,
    /// How much wider the degraded reconstruction's variance should be
    /// read: the ratio of the originally planned reconstruction terms to
    /// the surviving ones (`1.0` on clean runs). A heuristic inflation —
    /// fewer surviving terms means fewer independent estimates averaged
    /// into the same distribution.
    pub variance_inflation: f64,
    /// Warn-level findings of the pre-execution static analysis pass,
    /// plus runtime cache notices (`QA403` when a configured cache file
    /// failed to load or persist). Empty when the workload linted clean,
    /// nothing degraded, and analysis was disabled.
    pub diagnostics: Vec<Diagnostic>,
}

impl RunReport {
    /// Total end-to-end host seconds (gather + reconstruct + detection) —
    /// the Fig. 4 quantity.
    pub fn total_host_seconds(&self) -> f64 {
        self.gather_seconds + self.reconstruct_seconds + self.detection_seconds
    }

    /// Number of golden cuts in this run.
    pub fn num_golden(&self) -> usize {
        self.neglected.iter().filter(|n| !n.is_empty()).count()
    }

    /// Fraction of planned engine jobs eliminated by dedup/reuse
    /// (`0.0` when every planned job was executed).
    pub fn dedup_ratio(&self) -> f64 {
        if self.jobs_planned == 0 {
            0.0
        } else {
            1.0 - self.jobs_executed as f64 / self.jobs_planned as f64
        }
    }

    /// Fraction of simulation gate applications eliminated by prefix
    /// sharing (`0.0` when nothing was shared).
    pub fn prefix_sharing_ratio(&self) -> f64 {
        let naive = self.gates_applied + self.gates_saved;
        if naive == 0 {
            0.0
        } else {
            self.gates_saved as f64 / naive as f64
        }
    }
}

/// Report for an uncut reference execution (the Fig. 3 baseline arm).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncutReport {
    /// Shots executed.
    pub shots: u64,
    /// Simulated device seconds.
    pub simulated_device_seconds: f64,
    /// Host seconds.
    pub host_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = RunReport {
            num_cuts: 1,
            neglected: vec![vec![Pauli::Y]],
            allocation: ShotAllocation::Uniform {
                shots_per_setting: 1000,
            },
            upstream_settings: 2,
            downstream_settings: 4,
            subcircuits_executed: 6,
            total_shots: 6000,
            pilot_shots: 0,
            rounds: 1,
            shots_requested: 6000,
            jobs_planned: 6,
            jobs_executed: 6,
            shots_saved: 0,
            cache_hits: 0,
            cache_shots_reused: 0,
            states_reused: 0,
            gates_applied: 30,
            gates_saved: 70,
            reconstruction_terms: 3,
            simulated_device_seconds: 12.6,
            gather_seconds: 0.5,
            reconstruct_seconds: 0.1,
            detection_shots: 0,
            detection_seconds: 0.0,
            attempts: 6,
            jobs_retried: 0,
            shots_lost: 0,
            backoff_seconds: 0.0,
            jobs_per_member: Vec::new(),
            member_makespan_seconds: Vec::new(),
            pool_parallel_ratio: 1.0,
            jobs_failed_over: 0,
            degraded: false,
            failures: Vec::new(),
            variance_inflation: 1.0,
            diagnostics: Vec::new(),
        };
        assert!((r.total_host_seconds() - 0.6).abs() < 1e-12);
        assert_eq!(r.num_golden(), 1);
        assert_eq!(r.dedup_ratio(), 0.0);
        assert!((r.prefix_sharing_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn failure_records_render_node_failures() {
        use qcut_device::backend::{BackendError, TransientKind};
        let node = NodeFailure {
            node: 3,
            consumers: vec![(Channel::UpstreamMeas, 1), (Channel::DownstreamPrep, 7)],
            error: BackendError::Transient {
                kind: TransientKind::Network,
                attempt: 2,
            },
            attempts: 2,
            shots_lost: 1500,
        };
        let rec = FailureRecord::from(&node);
        assert_eq!(rec.consumers, node.consumers);
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.shots_lost, 1500);
        assert!(rec.error.contains("network"), "{}", rec.error);
    }
}
