//! Basis bookkeeping for the cutting protocol.
//!
//! For `K` cuts the upstream fragment is measured in one of `3^K` basis
//! settings (`{X, Y, Z}` per cut) and the downstream fragment prepared in
//! one of `6^K` eigenstate combinations. The reconstruction sum runs over
//! Pauli strings `M ∈ {I, X, Y, Z}^K`. A golden cut removes a basis from
//! all three enumerations: `3 → 2` measurement settings, `6 → 4`
//! preparations, `4 → 3` reconstruction values (paper §II-B). The paper
//! notes "there can be … multiple negligible bases in one cut", so the
//! plan stores a *set* of neglected bases per cut.

use qcut_math::{Pauli, PrepState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A measurement basis on one cut qubit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MeasBasis {
    /// Measure in the X basis.
    X,
    /// Measure in the Y basis.
    Y,
    /// Measure in the Z basis (also yields the identity coefficients).
    Z,
}

impl MeasBasis {
    /// All three settings.
    pub const ALL: [MeasBasis; 3] = [MeasBasis::X, MeasBasis::Y, MeasBasis::Z];

    /// The underlying Pauli.
    pub fn pauli(self) -> Pauli {
        match self {
            MeasBasis::X => Pauli::X,
            MeasBasis::Y => Pauli::Y,
            MeasBasis::Z => Pauli::Z,
        }
    }

    /// The setting that measures a given reconstruction Pauli: `I` shares
    /// the `Z` setting (the identity coefficient is the marginal of the
    /// Z-basis data).
    pub fn for_pauli(p: Pauli) -> MeasBasis {
        match p {
            Pauli::I | Pauli::Z => MeasBasis::Z,
            Pauli::X => MeasBasis::X,
            Pauli::Y => MeasBasis::Y,
        }
    }
}

impl fmt::Display for MeasBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pauli())
    }
}

/// Which bases are active per cut once golden cuts are taken into account.
/// `neglected[k]` is the set of bases skipped at cut `k` (usually empty or
/// one element; the identity is never allowed in it).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasisPlan {
    neglected: Vec<Vec<Pauli>>,
}

impl BasisPlan {
    /// The standard (no neglect) plan for `K` cuts.
    pub fn standard(num_cuts: usize) -> Self {
        BasisPlan {
            neglected: vec![Vec::new(); num_cuts],
        }
    }

    /// A plan with one optional neglected basis per cut (the common case).
    pub fn with_neglected(neglected: Vec<Option<Pauli>>) -> Self {
        let mut plan = Self::standard(neglected.len());
        for (k, n) in neglected.into_iter().enumerate() {
            if let Some(p) = n {
                plan.neglect(k, p);
            }
        }
        plan
    }

    /// Marks `basis` as negligible at `cut`.
    ///
    /// # Panics
    /// Panics on `Pauli::I` (the identity carries the normalisation and can
    /// never be dropped) and when all three bases of a cut would be gone.
    pub fn neglect(&mut self, cut: usize, basis: Pauli) {
        assert!(
            self.try_neglect(cut, basis),
            "cannot neglect {basis} at cut {cut}: the identity basis can never be \
             dropped, nor all three bases of a cut"
        );
    }

    /// Non-panicking [`Self::neglect`]: marks `basis` as negligible at
    /// `cut` when legal, returning whether the plan now neglects it.
    /// Illegal requests — dropping the identity, or emptying a cut's last
    /// surviving pair — leave the plan unchanged and return `false`.
    /// Degraded-reconstruction salvage uses this to probe which settings a
    /// damaged run can still drop without making the frame unsolvable.
    #[must_use]
    pub fn try_neglect(&mut self, cut: usize, basis: Pauli) -> bool {
        if basis == Pauli::I || cut >= self.neglected.len() {
            return false;
        }
        let set = &mut self.neglected[cut];
        if set.contains(&basis) {
            return true;
        }
        if set.len() >= 2 {
            return false;
        }
        set.push(basis);
        set.sort_unstable();
        true
    }

    /// Number of cuts.
    pub fn num_cuts(&self) -> usize {
        self.neglected.len()
    }

    /// The neglected bases per cut.
    pub fn neglected(&self) -> &[Vec<Pauli>] {
        &self.neglected
    }

    /// Number of golden cuts `K_g` (cuts with at least one neglected basis).
    pub fn num_golden(&self) -> usize {
        self.neglected.iter().filter(|n| !n.is_empty()).count()
    }

    /// Measurement bases available at cut `k` (3 regular, 2 golden, 1 if
    /// two bases are negligible).
    pub fn meas_bases(&self, cut: usize) -> Vec<MeasBasis> {
        MeasBasis::ALL
            .into_iter()
            .filter(|b| !self.neglected[cut].contains(&b.pauli()))
            .collect()
    }

    /// Preparation states available at cut `k` (6 regular, 4 golden, …).
    pub fn prep_states(&self, cut: usize) -> Vec<PrepState> {
        PrepState::ALL
            .into_iter()
            .filter(|s| !self.neglected[cut].contains(&s.pauli()))
            .collect()
    }

    /// Reconstruction Paulis at cut `k` (`I` plus the surviving bases).
    pub fn recon_paulis(&self, cut: usize) -> Vec<Pauli> {
        Pauli::ALL
            .into_iter()
            .filter(|p| !self.neglected[cut].contains(p))
            .collect()
    }

    /// All measurement settings: cartesian product over cuts
    /// (`3^{K_r} 2^{K_g}` for single-basis golden cuts).
    pub fn all_meas_settings(&self) -> Vec<Vec<MeasBasis>> {
        cartesian((0..self.num_cuts()).map(|k| self.meas_bases(k)))
    }

    /// All preparation settings (`6^{K_r} 4^{K_g}`).
    pub fn all_prep_settings(&self) -> Vec<Vec<PrepState>> {
        cartesian((0..self.num_cuts()).map(|k| self.prep_states(k)))
    }

    /// All reconstruction Pauli strings (`4^{K_r} 3^{K_g}`).
    pub fn all_recon_strings(&self) -> Vec<Vec<Pauli>> {
        cartesian((0..self.num_cuts()).map(|k| self.recon_paulis(k)))
    }

    /// Total subcircuit settings: upstream + downstream
    /// (`3^{K_r} 2^{K_g} + 6^{K_r} 4^{K_g}`; the paper's single-cut case is
    /// `3 + 6 = 9` standard vs `2 + 4 = 6` golden — the 33 % saving).
    pub fn total_settings(&self) -> usize {
        self.all_meas_settings().len() + self.all_prep_settings().len()
    }

    /// The measurement setting that estimates a given reconstruction string.
    ///
    /// The identity coefficient is the marginal over the cut outcome, so it
    /// can be read off *any* scheduled basis; we use `Z` by convention and
    /// fall back to the first surviving basis when `Z` itself is neglected.
    pub fn setting_for(&self, m: &[Pauli]) -> Vec<MeasBasis> {
        m.iter()
            .enumerate()
            .map(|(k, &p)| match p {
                Pauli::I => {
                    let avail = self.meas_bases(k);
                    if avail.contains(&MeasBasis::Z) {
                        MeasBasis::Z
                    } else {
                        avail[0]
                    }
                }
                _ => MeasBasis::for_pauli(p),
            })
            .collect()
    }

    /// The signed preparation pair realising Pauli `p` at cut `k`:
    /// `p = Σ weight · |state><state|`. Non-trivial Paulis decompose into
    /// their own eigenstates with weights ±1; the identity decomposes into
    /// the eigenstate pair of any *available* basis with weights +1
    /// (`|0><0| + |1><1| = |+><+| + |-><-| = I`).
    pub fn prep_pair(&self, cut: usize, p: Pauli) -> [(PrepState, f64); 2] {
        match p {
            Pauli::I => {
                let avail = self.meas_bases(cut);
                let basis = if avail.contains(&MeasBasis::Z) {
                    Pauli::Z
                } else {
                    avail[0].pauli()
                };
                let (plus, minus) = PrepState::of_pauli(basis);
                [(plus, 1.0), (minus, 1.0)]
            }
            _ => {
                debug_assert!(
                    !self.neglected[cut].contains(&p),
                    "asked for the prep pair of a neglected basis"
                );
                let (plus, minus) = PrepState::of_pauli(p);
                [(plus, 1.0), (minus, -1.0)]
            }
        }
    }
}

/// Dense encoding of a measurement setting for map keys.
pub fn encode_meas(setting: &[MeasBasis]) -> u64 {
    let mut key = 0u64;
    for &b in setting.iter().rev() {
        key = key * 3
            + match b {
                MeasBasis::X => 0,
                MeasBasis::Y => 1,
                MeasBasis::Z => 2,
            };
    }
    key
}

/// Dense encoding of a preparation setting for map keys.
pub fn encode_prep(setting: &[PrepState]) -> u64 {
    let mut key = 0u64;
    for &s in setting.iter().rev() {
        key = key * 6
            + match s {
                PrepState::Zp => 0,
                PrepState::Zm => 1,
                PrepState::Xp => 2,
                PrepState::Xm => 3,
                PrepState::Yp => 4,
                PrepState::Ym => 5,
            };
    }
    key
}

/// Inverse of [`encode_meas`]: the measurement setting behind a dense key.
/// Needed when walking backwards from an engine consumer key — e.g. a
/// failure record — to the basis settings it served.
pub fn decode_meas(mut key: u64, num_cuts: usize) -> Vec<MeasBasis> {
    let mut setting = Vec::with_capacity(num_cuts);
    for _ in 0..num_cuts {
        setting.push(match key % 3 {
            0 => MeasBasis::X,
            1 => MeasBasis::Y,
            _ => MeasBasis::Z,
        });
        key /= 3;
    }
    setting
}

/// Inverse of [`encode_prep`]: the preparation setting behind a dense key.
pub fn decode_prep(mut key: u64, num_cuts: usize) -> Vec<PrepState> {
    let mut setting = Vec::with_capacity(num_cuts);
    for _ in 0..num_cuts {
        setting.push(match key % 6 {
            0 => PrepState::Zp,
            1 => PrepState::Zm,
            2 => PrepState::Xp,
            3 => PrepState::Xm,
            4 => PrepState::Yp,
            _ => PrepState::Ym,
        });
        key /= 6;
    }
    setting
}

/// Dense encoding of a reconstruction Pauli string for map keys.
pub fn encode_paulis(m: &[Pauli]) -> u64 {
    let mut key = 0u64;
    for &p in m.iter().rev() {
        key = key * 4
            + match p {
                Pauli::I => 0,
                Pauli::X => 1,
                Pauli::Y => 2,
                Pauli::Z => 3,
            };
    }
    key
}

/// Cartesian product of per-position option lists.
fn cartesian<T: Clone, I: Iterator<Item = Vec<T>>>(options: I) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![Vec::new()];
    for opts in options {
        let mut next = Vec::with_capacity(out.len() * opts.len());
        for prefix in &out {
            for o in &opts {
                let mut v = prefix.clone();
                v.push(o.clone());
                next.push(v);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_plan_counts_match_paper() {
        // Single cut: 3 measurement settings + 6 preparations = 9.
        let plan = BasisPlan::standard(1);
        assert_eq!(plan.all_meas_settings().len(), 3);
        assert_eq!(plan.all_prep_settings().len(), 6);
        assert_eq!(plan.total_settings(), 9);
        assert_eq!(plan.all_recon_strings().len(), 4);
    }

    #[test]
    fn golden_plan_counts_match_paper() {
        // Golden single cut: 2 + 4 = 6 settings — the 33 % reduction.
        let mut plan = BasisPlan::standard(1);
        plan.neglect(0, Pauli::Y);
        assert_eq!(plan.all_meas_settings().len(), 2);
        assert_eq!(plan.all_prep_settings().len(), 4);
        assert_eq!(plan.total_settings(), 6);
        assert_eq!(plan.all_recon_strings().len(), 3);
        assert_eq!(plan.num_golden(), 1);
    }

    #[test]
    fn multi_cut_scaling_exponents() {
        // K = 3 with K_g = 2 golden cuts: 4^1 · 3^2 reconstruction strings,
        // 6^1 · 4^2 preparations (paper §II-B complexity claims).
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Y), None, Some(Pauli::Y)]);
        assert_eq!(plan.all_recon_strings().len(), 3 * 4 * 3);
        assert_eq!(plan.all_prep_settings().len(), 4 * 6 * 4);
        assert_eq!(plan.all_meas_settings().len(), 2 * 3 * 2);
    }

    #[test]
    fn doubly_golden_cut_supported() {
        // Paper: "multiple negligible bases in one cut".
        let mut plan = BasisPlan::standard(1);
        plan.neglect(0, Pauli::X);
        plan.neglect(0, Pauli::Y);
        assert_eq!(plan.meas_bases(0), vec![MeasBasis::Z]);
        assert_eq!(plan.prep_states(0).len(), 2);
        assert_eq!(plan.all_recon_strings().len(), 2); // I, Z
        assert_eq!(plan.total_settings(), 3);
    }

    #[test]
    #[should_panic(expected = "all three bases")]
    fn cannot_neglect_everything() {
        let mut plan = BasisPlan::standard(1);
        plan.neglect(0, Pauli::X);
        plan.neglect(0, Pauli::Y);
        plan.neglect(0, Pauli::Z);
    }

    #[test]
    fn neglect_is_idempotent() {
        let mut plan = BasisPlan::standard(1);
        plan.neglect(0, Pauli::Y);
        plan.neglect(0, Pauli::Y);
        assert_eq!(plan.neglected()[0], vec![Pauli::Y]);
        assert_eq!(plan.total_settings(), 6);
    }

    #[test]
    fn neglected_basis_is_absent_everywhere() {
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
        assert!(!plan.meas_bases(0).contains(&MeasBasis::Y));
        assert!(!plan.prep_states(0).contains(&PrepState::Yp));
        assert!(!plan.prep_states(0).contains(&PrepState::Ym));
        assert!(!plan.recon_paulis(0).contains(&Pauli::Y));
        // I always survives.
        assert!(plan.recon_paulis(0).contains(&Pauli::I));
    }

    #[test]
    fn neglecting_x_works_too() {
        // Definition 1 is basis-generic; X can be the negligible one.
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::X)]);
        assert_eq!(plan.meas_bases(0), vec![MeasBasis::Y, MeasBasis::Z]);
        assert_eq!(plan.all_prep_settings().len(), 4);
    }

    #[test]
    #[should_panic(expected = "identity basis")]
    fn neglecting_identity_is_rejected() {
        BasisPlan::with_neglected(vec![Some(Pauli::I)]);
    }

    #[test]
    fn setting_for_maps_i_to_z() {
        let plan = BasisPlan::standard(2);
        let setting = plan.setting_for(&[Pauli::I, Pauli::X]);
        assert_eq!(setting, vec![MeasBasis::Z, MeasBasis::X]);
    }

    #[test]
    fn encodings_are_injective() {
        let plan = BasisPlan::standard(3);
        let meas: std::collections::HashSet<u64> = plan
            .all_meas_settings()
            .iter()
            .map(|s| encode_meas(s))
            .collect();
        assert_eq!(meas.len(), 27);
        let preps: std::collections::HashSet<u64> = plan
            .all_prep_settings()
            .iter()
            .map(|s| encode_prep(s))
            .collect();
        assert_eq!(preps.len(), 216);
        let paulis: std::collections::HashSet<u64> = plan
            .all_recon_strings()
            .iter()
            .map(|m| encode_paulis(m))
            .collect();
        assert_eq!(paulis.len(), 64);
    }

    #[test]
    fn decode_inverts_encode() {
        let plan = BasisPlan::standard(3);
        for s in plan.all_meas_settings() {
            assert_eq!(decode_meas(encode_meas(&s), 3), s);
        }
        for s in plan.all_prep_settings() {
            assert_eq!(decode_prep(encode_prep(&s), 3), s);
        }
    }

    #[test]
    fn try_neglect_refuses_what_neglect_panics_on() {
        let mut plan = BasisPlan::standard(1);
        assert!(!plan.try_neglect(0, Pauli::I));
        assert!(plan.try_neglect(0, Pauli::X));
        assert!(plan.try_neglect(0, Pauli::X), "idempotent re-neglect");
        assert!(plan.try_neglect(0, Pauli::Y));
        // The last surviving basis cannot go.
        assert!(!plan.try_neglect(0, Pauli::Z));
        assert_eq!(plan.meas_bases(0), vec![MeasBasis::Z]);
        // Out-of-range cuts are a refusal, not a panic.
        assert!(!plan.try_neglect(5, Pauli::X));
    }

    #[test]
    fn zero_cut_plan_has_single_empty_setting() {
        // Degenerate but well-defined: the cartesian product over zero cuts
        // is one empty tuple.
        let plan = BasisPlan::standard(0);
        assert_eq!(plan.all_meas_settings(), vec![Vec::<MeasBasis>::new()]);
        assert_eq!(plan.total_settings(), 2);
    }

    #[test]
    fn recon_string_setting_is_always_available() {
        // Every reconstruction string must map to a setting that the plan
        // actually schedules (the reconstruction relies on this) — also
        // when Z itself is the neglected basis.
        for plan in [
            BasisPlan::with_neglected(vec![Some(Pauli::Y), None]),
            BasisPlan::with_neglected(vec![Some(Pauli::Z)]),
            BasisPlan::with_neglected(vec![Some(Pauli::Z), Some(Pauli::X)]),
        ] {
            let settings: std::collections::HashSet<u64> = plan
                .all_meas_settings()
                .iter()
                .map(|s| encode_meas(s))
                .collect();
            for m in plan.all_recon_strings() {
                let s = plan.setting_for(&m);
                assert!(
                    settings.contains(&encode_meas(&s)),
                    "string {m:?} needs unscheduled setting {s:?}"
                );
            }
        }
    }

    #[test]
    fn prep_pair_decomposes_the_pauli() {
        use qcut_math::Matrix;
        // Σ weight · |state><state| must equal the Pauli matrix, for every
        // plan configuration (including Z-neglected identity fallback).
        for plan in [
            BasisPlan::standard(1),
            BasisPlan::with_neglected(vec![Some(Pauli::Y)]),
            BasisPlan::with_neglected(vec![Some(Pauli::Z)]),
        ] {
            for p in plan.recon_paulis(0) {
                let pair = plan.prep_pair(0, p);
                let mut sum = Matrix::zeros(2, 2);
                for (state, w) in pair {
                    sum = &sum + &state.density().scale(qcut_math::c64(w, 0.0));
                }
                assert!(
                    sum.approx_eq(&p.matrix(), 1e-12),
                    "prep pair for {p} does not reconstruct it (plan {:?})",
                    plan.neglected()
                );
            }
        }
    }

    #[test]
    fn prep_pair_avoids_neglected_states() {
        // With Z neglected, the identity pair must not use |0>/|1>.
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Z)]);
        let pair = plan.prep_pair(0, Pauli::I);
        for (state, _) in pair {
            assert_ne!(state.pauli(), Pauli::Z);
        }
    }
}
