//! Golden cutting point policies and detection.
//!
//! The paper (Definition 1) calls a cut *golden* when the eigenvalue-
//! weighted upstream coefficient of some basis vanishes identically:
//! `Σ_r r · tr(O_f1 ρ_f1(M^r)) = 0` for every reconstruction string `M`
//! carrying that basis at the cut. Three ways to obtain this knowledge are
//! implemented:
//!
//! * **A priori** — the paper's experimental setting ("we assumed the
//!   golden cutting point was known a priori", §III-B): the caller names
//!   the negligible bases.
//! * **Exact detection** — classically simulate the upstream fragment and
//!   test the coefficients against a tolerance. Free for fragments small
//!   enough to simulate, which is the regime circuit cutting targets.
//! * **Online detection** — the paper's §IV proposal: estimate the
//!   coefficients from sequential batches of real measurements and decide
//!   with a concentration bound (Hoeffding), without ever simulating.
//! * **Static proof** — the dataflow engine's symbolic route
//!   ([`crate::dataflow`]): propagate a stabilizer tableau through the
//!   upstream fragment and *prove* coefficients zero over GF(2), spending
//!   neither shots nor statevector memory.

use crate::basis::{encode_meas, BasisPlan, MeasBasis};
use crate::fragment::Fragment;
use crate::reconstruction::{exact_upstream_tensor, extract_bits};
use qcut_math::{Pauli, TOL_GOLDEN};
use qcut_sim::counts::Counts;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the pipeline learns about golden cutting points.
#[derive(Debug, Clone, PartialEq)]
pub enum GoldenPolicy {
    /// Standard method: nothing is neglected (the paper's baseline
    /// \[18\]).
    Disabled,
    /// The paper's experiments: neglected bases are known from the circuit
    /// design. Pairs of `(cut index, basis)`.
    KnownAPriori(Vec<(usize, Pauli)>),
    /// Detect negligible bases by exact upstream simulation before running
    /// any hardware job.
    DetectExact {
        /// Coefficients below this are treated as zero.
        tolerance: f64,
    },
    /// Detect negligible bases online from measurement batches
    /// (paper §IV).
    DetectOnline(OnlineConfig),
    /// Prove negligible bases symbolically with the stabilizer-domain
    /// dataflow engine ([`crate::dataflow::proven_plan`]) — zero detection
    /// shots, zero simulation. Complete on Clifford upstream fragments;
    /// sound (possibly conservative) everywhere else.
    ProveStatic,
}

impl GoldenPolicy {
    /// The paper's default exact detector.
    pub fn detect_exact() -> Self {
        GoldenPolicy::DetectExact {
            tolerance: TOL_GOLDEN,
        }
    }
}

/// Exact golden-point detector.
#[derive(Debug, Clone, Copy)]
pub struct ExactDetector {
    /// Coefficients below this are treated as zero.
    pub tolerance: f64,
}

impl Default for ExactDetector {
    fn default() -> Self {
        ExactDetector {
            tolerance: TOL_GOLDEN,
        }
    }
}

impl ExactDetector {
    /// Simulates the upstream fragment and returns the plan with every
    /// detected negligible basis removed. At most two bases per cut are
    /// neglected (one basis must survive to provide the identity
    /// marginal).
    pub fn detect(&self, upstream: &Fragment, num_cuts: usize) -> BasisPlan {
        let standard = BasisPlan::standard(num_cuts);
        let tensor = exact_upstream_tensor(upstream, &standard);
        let strings = standard.all_recon_strings();
        let mut plan = BasisPlan::standard(num_cuts);
        for cut in 0..num_cuts {
            let mut neglected = 0;
            // Prefer Y (the paper's designed case), then X, then Z.
            for candidate in [Pauli::Y, Pauli::X, Pauli::Z] {
                if neglected == 2 {
                    break;
                }
                let worst = strings
                    .iter()
                    .filter(|m| m[cut] == candidate)
                    .map(|m| tensor.max_abs(m))
                    .fold(0.0f64, f64::max);
                if worst < self.tolerance {
                    plan.neglect(cut, candidate);
                    neglected += 1;
                }
            }
        }
        plan
    }
}

/// Configuration for the online detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// The basis under test (the paper's ansatz makes Y the candidate).
    pub candidate: Pauli,
    /// Accept "golden" when every coefficient is provably below this.
    pub epsilon: f64,
    /// Confidence parameter: each bound holds with probability `1 − delta`.
    pub delta: f64,
    /// Shots per sequential batch.
    pub batch_shots: u64,
    /// Give up (verdict [`GoldenVerdict::Undecided`]) after this many
    /// shots per setting.
    pub max_shots: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            candidate: Pauli::Y,
            epsilon: 0.05,
            delta: 0.01,
            batch_shots: 500,
            max_shots: 20_000,
        }
    }
}

/// Outcome of the sequential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoldenVerdict {
    /// All coefficients provably below epsilon: neglect the basis.
    Golden,
    /// Some coefficient provably above epsilon: keep the basis.
    NotGolden,
    /// Not enough shots to decide either way.
    Undecided,
}

/// Sequential empirical detector for one cut (paper §IV).
///
/// Feed it upstream counts for the settings it requires
/// ([`OnlineDetector::required_settings`]); it maintains running coefficient
/// estimates and decides once the Hoeffding interval separates every
/// estimate from (or some estimate beyond) the epsilon threshold.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    config: OnlineConfig,
    cut: usize,
    num_cuts: usize,
    output_locals: Vec<usize>,
    cut_ports: Vec<usize>,
    /// Accumulated counts per required setting key.
    data: HashMap<u64, Counts>,
}

impl OnlineDetector {
    /// A detector for cut `cut` of an upstream fragment with `num_cuts`
    /// cuts.
    pub fn new(upstream: &Fragment, cut: usize, num_cuts: usize, config: OnlineConfig) -> Self {
        assert!(cut < num_cuts, "cut index out of range");
        assert_ne!(config.candidate, Pauli::I, "cannot test the identity");
        OnlineDetector {
            config,
            cut,
            num_cuts,
            output_locals: upstream.output_locals.clone(),
            cut_ports: upstream.cut_ports.clone(),
            data: HashMap::new(),
        }
    }

    /// The measurement settings whose data the verdict needs: candidate at
    /// this cut, all basis combinations elsewhere (`3^{K-1}` settings).
    pub fn required_settings(&self) -> Vec<Vec<MeasBasis>> {
        let mut settings = vec![Vec::new()];
        for k in 0..self.num_cuts {
            let options: Vec<MeasBasis> = if k == self.cut {
                vec![MeasBasis::for_pauli(self.config.candidate)]
            } else {
                MeasBasis::ALL.to_vec()
            };
            let mut next = Vec::with_capacity(settings.len() * options.len());
            for prefix in &settings {
                for &o in &options {
                    let mut s: Vec<MeasBasis> = prefix.clone();
                    s.push(o);
                    next.push(s);
                }
            }
            settings = next;
        }
        settings
    }

    /// Accumulates a batch of counts for one setting.
    pub fn feed(&mut self, setting: &[MeasBasis], counts: &Counts) {
        let key = encode_meas(setting);
        self.data
            .entry(key)
            .and_modify(|c| c.merge(counts))
            .or_insert_with(|| counts.clone());
    }

    /// Total shots accumulated on the least-covered required setting.
    pub fn min_shots(&self) -> u64 {
        self.required_settings()
            .iter()
            .map(|s| {
                self.data
                    .get(&encode_meas(s))
                    .map(|c| c.total())
                    .unwrap_or(0)
            })
            .min()
            .unwrap_or(0)
    }

    /// The current verdict.
    pub fn verdict(&self) -> GoldenVerdict {
        let settings = self.required_settings();
        // Need data on every setting first.
        if settings.iter().any(|s| {
            self.data
                .get(&encode_meas(s))
                .is_none_or(|c| c.total() == 0)
        }) {
            return GoldenVerdict::Undecided;
        }

        let mut all_provably_small = true;
        for setting in &settings {
            let counts = &self.data[&encode_meas(setting)];
            let n = counts.total();
            // Each coefficient is a mean of ±1-bounded per-shot values.
            let eps_n = qcut_stats::bounds::hoeffding_epsilon(n, self.config.delta, -1.0, 1.0);
            let joint = counts.split(&self.output_locals, &self.cut_ports);
            let total = n as f64;

            // Enumerate M strings measurable from this setting with the
            // candidate at the tested cut: M_j ∈ {setting_j, I} for j ≠ cut.
            let free: Vec<usize> = (0..self.num_cuts).filter(|&k| k != self.cut).collect();
            for subset in 0..(1usize << free.len()) {
                let mut m: Vec<Pauli> = setting.iter().map(|b| b.pauli()).collect();
                m[self.cut] = self.config.candidate;
                for (i, &k) in free.iter().enumerate() {
                    if (subset >> i) & 1 == 1 {
                        m[k] = Pauli::I;
                    }
                }
                // Estimate A[M][b1] for every observed b1.
                let mut acc: HashMap<u64, f64> = HashMap::new();
                for (&(b1, rbits), &cnt) in &joint {
                    let mut sign = 1.0;
                    for (k, &pauli) in m.iter().enumerate() {
                        if pauli != Pauli::I && (rbits >> k) & 1 == 1 {
                            sign = -sign;
                        }
                    }
                    *acc.entry(b1).or_insert(0.0) += sign * cnt as f64 / total;
                }
                for (_, a) in acc {
                    if a.abs() - eps_n > self.config.epsilon {
                        return GoldenVerdict::NotGolden;
                    }
                    if a.abs() + eps_n > self.config.epsilon {
                        all_provably_small = false;
                    }
                }
            }
        }
        if all_provably_small {
            GoldenVerdict::Golden
        } else {
            GoldenVerdict::Undecided
        }
    }

    /// Whether the shot budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.min_shots() >= self.config.max_shots
    }

    /// The configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }
}

/// Resolves a [`GoldenPolicy`] into a concrete [`BasisPlan`] without
/// touching a backend (the online variant is resolved by the pipeline,
/// which owns backend access).
pub fn resolve_static_policy(
    policy: &GoldenPolicy,
    upstream: &Fragment,
    num_cuts: usize,
) -> Option<BasisPlan> {
    match policy {
        GoldenPolicy::Disabled => Some(BasisPlan::standard(num_cuts)),
        GoldenPolicy::KnownAPriori(pairs) => {
            let mut plan = BasisPlan::standard(num_cuts);
            for &(cut, basis) in pairs {
                assert!(cut < num_cuts, "cut index {cut} out of range");
                plan.neglect(cut, basis);
            }
            Some(plan)
        }
        GoldenPolicy::DetectExact { tolerance } => {
            let detector = ExactDetector {
                tolerance: *tolerance,
            };
            Some(detector.detect(upstream, num_cuts))
        }
        GoldenPolicy::DetectOnline(_) => None,
        GoldenPolicy::ProveStatic => Some(crate::dataflow::proven_plan(upstream, num_cuts)),
    }
}

/// Test helper shared with the pipeline: simulate one upstream setting and
/// sample counts from it (what a backend run of the variant would return).
pub fn simulate_upstream_setting(
    upstream: &Fragment,
    setting: &[MeasBasis],
    shots: u64,
    seed: u64,
) -> Counts {
    use crate::tomography::build_upstream_circuit;
    use qcut_sim::statevector::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let circuit = build_upstream_circuit(upstream, setting);
    let sv = StateVector::from_circuit(&circuit);
    let mut rng = StdRng::seed_from_u64(seed);
    sv.sample(shots, &mut rng)
}

#[allow(unused)]
fn _extract_bits_reexport_check() {
    // keep the import used in both cfg contexts
    let _ = extract_bits(0, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
    use qcut_circuit::circuit::Circuit;
    use qcut_circuit::cut::CutSpec;

    fn golden_fragment(seed: u64) -> Fragment {
        let (c, spec) = GoldenAnsatz::new(5, seed).build();
        Fragmenter::fragment(&c, &spec).unwrap().upstream
    }

    fn non_golden_fragment() -> Fragment {
        // RX rotations give the cut qubit a Y component; the trailing RZ
        // mixes it into X as well, so no basis is negligible. (Without the
        // RZ, the X coefficients of this family vanish identically — a
        // accidental golden point that tripped an earlier version of this
        // test.)
        let mut c = Circuit::new(3);
        c.rx(1.1, 0).rx(0.9, 1).cx(0, 1).rz(0.8, 1).cx(1, 2);
        let spec = CutSpec::single(1, 2);
        Fragmenter::fragment(&c, &spec).unwrap().upstream
    }

    #[test]
    fn exact_detector_finds_designed_golden_point() {
        for seed in 0..5 {
            let frag = golden_fragment(seed);
            let plan = ExactDetector::default().detect(&frag, 1);
            assert!(
                plan.neglected()[0].contains(&Pauli::Y),
                "seed {seed}: Y not detected as negligible"
            );
        }
    }

    #[test]
    fn exact_detector_rejects_non_golden_circuit() {
        let plan = ExactDetector::default().detect(&non_golden_fragment(), 1);
        assert!(
            plan.neglected()[0].is_empty(),
            "found a golden point where none exists: {:?}",
            plan.neglected()
        );
    }

    #[test]
    fn exact_detector_multi_cut() {
        let (c, spec) = MultiCutAnsatz::new(2, 9).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let plan = ExactDetector::default().detect(&frags.upstream, 2);
        for k in 0..2 {
            assert!(
                plan.neglected()[k].contains(&Pauli::Y),
                "cut {k} not detected golden: {:?}",
                plan.neglected()
            );
        }
    }

    #[test]
    fn exact_detector_caps_at_two_bases() {
        // A |0> cut qubit makes X and Y negligible; Z must survive.
        let mut c = Circuit::new(2);
        c.h(1).h(1); // identity on the cut wire, but keeps it active
        c.cx(1, 0); // hmm: wire 1 feeds the cut
        let spec = CutSpec::single(1, 1);
        // rebuild: upstream is h,h on qubit 1; downstream cx(1,0).
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let plan = ExactDetector::default().detect(&frags.upstream, 1);
        let neglected = &plan.neglected()[0];
        assert!(neglected.contains(&Pauli::X));
        assert!(neglected.contains(&Pauli::Y));
        assert!(!neglected.contains(&Pauli::Z));
    }

    #[test]
    fn resolve_static_policies() {
        let frag = golden_fragment(0);
        let disabled = resolve_static_policy(&GoldenPolicy::Disabled, &frag, 1).unwrap();
        assert_eq!(disabled.num_golden(), 0);
        let known =
            resolve_static_policy(&GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]), &frag, 1)
                .unwrap();
        assert_eq!(known.num_golden(), 1);
        let exact = resolve_static_policy(&GoldenPolicy::detect_exact(), &frag, 1).unwrap();
        assert!(exact.neglected()[0].contains(&Pauli::Y));
        // The static prover resolves without a backend too; on the (real
        // but non-Clifford) golden ansatz it still proves Y via the
        // real-component argument.
        let proven = resolve_static_policy(&GoldenPolicy::ProveStatic, &frag, 1).unwrap();
        assert!(proven.neglected()[0].contains(&Pauli::Y));
        assert!(resolve_static_policy(
            &GoldenPolicy::DetectOnline(OnlineConfig::default()),
            &frag,
            1
        )
        .is_none());
    }

    #[test]
    fn online_detector_accepts_golden_circuit() {
        let frag = golden_fragment(1);
        let config = OnlineConfig {
            epsilon: 0.08,
            batch_shots: 2000,
            ..OnlineConfig::default()
        };
        let mut det = OnlineDetector::new(&frag, 0, 1, config);
        assert_eq!(det.verdict(), GoldenVerdict::Undecided);
        let mut seed = 0;
        while det.verdict() == GoldenVerdict::Undecided && !det.exhausted() {
            for setting in det.required_settings() {
                let counts =
                    simulate_upstream_setting(&frag, &setting, config.batch_shots, 1000 + seed);
                det.feed(&setting, &counts);
                seed += 1;
            }
        }
        assert_eq!(det.verdict(), GoldenVerdict::Golden);
    }

    #[test]
    fn online_detector_rejects_informative_basis() {
        let frag = non_golden_fragment();
        let config = OnlineConfig {
            epsilon: 0.05,
            batch_shots: 2000,
            ..OnlineConfig::default()
        };
        let mut det = OnlineDetector::new(&frag, 0, 1, config);
        let mut seed = 0;
        while det.verdict() == GoldenVerdict::Undecided && !det.exhausted() {
            for setting in det.required_settings() {
                let counts =
                    simulate_upstream_setting(&frag, &setting, config.batch_shots, 2000 + seed);
                det.feed(&setting, &counts);
                seed += 1;
            }
        }
        assert_eq!(det.verdict(), GoldenVerdict::NotGolden);
    }

    #[test]
    fn online_detector_needs_all_settings_for_multi_cut() {
        let (c, spec) = MultiCutAnsatz::new(2, 4).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let det = OnlineDetector::new(&frags.upstream, 0, 2, OnlineConfig::default());
        let settings = det.required_settings();
        assert_eq!(settings.len(), 3); // Y fixed at cut 0, {X,Y,Z} at cut 1
        for s in &settings {
            assert_eq!(s[0], MeasBasis::Y);
        }
    }

    #[test]
    fn online_detector_min_shots_tracks_coverage() {
        let frag = golden_fragment(2);
        let mut det = OnlineDetector::new(&frag, 0, 1, OnlineConfig::default());
        assert_eq!(det.min_shots(), 0);
        let setting = det.required_settings()[0].clone();
        let counts = simulate_upstream_setting(&frag, &setting, 300, 5);
        det.feed(&setting, &counts);
        assert_eq!(det.min_shots(), 300);
    }
}
