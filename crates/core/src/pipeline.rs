//! The high-level cutting pipeline: circuit + cut + policy → reconstructed
//! distribution + accounting.
//!
//! ```text
//! CutExecutor::run
//!   ├─ validate & fragment the circuit
//!   ├─ resolve the golden policy into a BasisPlan
//!   │    (a priori / exact simulation / online sequential detection,
//!   │     detection batches executed through the JobGraph engine)
//!   ├─ resolve the shot-allocation policy into gather round(s):
//!   │    single-round policies build one schedule; Adaptive runs a
//!   │    uniform pilot round, scores per-setting variance from the
//!   │    empirical tensors, and seeds a Neyman-weighted refine round
//!   │    from the pilot's measurements
//!   ├─ per round, plan the JobGraph (eigenstate or SIC builders;
//!   │    identical subcircuits dedup into one node, detection/pilot
//!   │    counts seed the cache) and execute it as one batched backend
//!   │    submission with fan-out
//!   ├─ reconstruct (tensor contraction, Eq. 14)
//!   └─ post-process the quasi-distribution
//! ```
//!
//! Every backend interaction — eigenstate gather, SIC gather, online
//! detection, and [`CutExecutor::run_uncut`] — flows through
//! [`crate::jobgraph::JobGraph`], so the [`RunReport`] carries unified
//! dedup accounting (`jobs_planned` / `jobs_executed` / `shots_saved`).

use crate::allocation::{
    pilot_schedule, pilot_total, refine_schedule, schedule_for_plan, schedule_sic, ShotAllocation,
    ShotSchedule,
};
use crate::analysis::{analyze_with_backend, AnalysisConfig, Diagnostic, LintCode, Severity};
use crate::basis::{decode_meas, decode_prep, encode_meas, encode_prep, BasisPlan};
use crate::error::{ExecutionFailure, PipelineError};
use crate::execution::FragmentData;
use crate::fragment::{Fragmenter, Fragments};
use crate::golden::{
    resolve_static_policy, GoldenPolicy, GoldenVerdict, OnlineConfig, OnlineDetector,
};
use crate::jobgraph::{Channel, ConsumerKey, GraphFailure, GraphStats, JobGraph, NodeFailure};
use crate::planner::{add_downstream_jobs, add_sic_jobs, add_upstream_jobs, uncut_graph};
use crate::reconstruction::{contract, downstream_tensor, upstream_tensor};
use crate::report::{FailureRecord, RunReport, UncutReport};
use crate::retry::{FailurePolicy, RetryPolicy};
use crate::sic::{all_sic_settings, build_sic_circuit, encode_sic, sic_downstream_tensor, SicData};
use crate::tomography::{build_downstream_circuit, build_upstream_circuit};
use crate::variance::neyman_scores;
use qcut_cache::{CacheKey, ShotDiscipline, WarmCache};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_device::backend::{Backend, BackendError, JobSpec};
use qcut_sim::counts::Counts;
use qcut_stats::distribution::Distribution;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Downstream preparation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconstructionMethod {
    /// Pauli eigenstate preparations: `6^{K_r} 4^{K_g}` subcircuits
    /// (the paper's scheme; golden cuts shrink it).
    #[default]
    Eigenstate,
    /// SIC preparations: always `4^K` subcircuits, linear solve during
    /// assembly (paper §II-B's alternative).
    Sic,
}

/// Post-processing applied to the reconstructed quasi-distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostProcess {
    /// Return the raw quasi-distribution (may have negative entries).
    Raw,
    /// Clip negatives and renormalise.
    #[default]
    ClipRenormalize,
    /// Euclidean projection onto the probability simplex.
    SimplexProjection,
}

/// Knobs for one pipeline run.
#[derive(Debug, Clone)]
pub struct ExecutionOptions {
    /// Shots for every subcircuit setting (the paper uses 1 000 for the
    /// runtime experiments and 10 000 for the accuracy experiment). The
    /// uniform budget that [`ExecutionOptions::allocation`] falls back to.
    pub shots_per_setting: u64,
    /// Shot-allocation policy for the gather schedule. `None` (the
    /// default) is the paper's protocol —
    /// [`ShotAllocation::Uniform`] at `shots_per_setting` — and is
    /// bit-identical to the historical uniform path. `Some(policy)`
    /// overrides the budget entirely (see [`crate::allocation`]);
    /// [`ShotAllocation::WeightedByUsage`] skews a fixed total toward the
    /// settings more reconstruction terms consume.
    pub allocation: Option<ShotAllocation>,
    /// Downstream preparation scheme.
    pub method: ReconstructionMethod,
    /// Post-processing step.
    pub postprocess: PostProcess,
    /// Fan subcircuits out over the rayon pool.
    pub parallel: bool,
    /// Deduplicate structurally identical subcircuits on the JobGraph
    /// engine and reuse online-detection data for the main gather. Off is
    /// the ablation baseline: every planned job executes independently.
    pub dedup: bool,
    /// The static-analysis gate run before anything executes (see
    /// [`crate::analysis`]): deny-level findings abort the run as
    /// [`PipelineError::Analysis`], warnings ride in
    /// [`RunReport::diagnostics`]. [`AnalysisConfig::disabled`] skips it.
    pub analysis: AnalysisConfig,
    /// Cross-run warm-start cache (see [`qcut_cache`]). `None` — the
    /// default — is bit-identical to the historical pipeline. `Some`
    /// seeds every first gather round from persisted per-node histograms
    /// (the engine executes only each node's shot *increment*, attributed
    /// to [`RunReport::cache_shots_reused`]) and stores the delivered
    /// cumulative histograms back after the run. Requires
    /// [`ExecutionOptions::dedup`] — with dedup off (the ablation
    /// baseline) the cache is bypassed entirely, because serving
    /// hash-keyed entries without the engine's equality confirmation
    /// would be unsound.
    pub cache: Option<Arc<WarmCache>>,
    /// Retry policy honored inside every engine submission of the run
    /// (detection batches, pilot, gather rounds): transient backend
    /// faults and deterministic per-job timeouts re-submit only the
    /// failed nodes, up to [`RetryPolicy::max_attempts`] total attempts
    /// each. The default (one attempt, no backoff, no timeout) is
    /// bit-identical to the historical engine.
    pub retry: RetryPolicy,
    /// What to do when a node still fails after every retry:
    /// [`FailurePolicy::Fail`] (default) aborts with a typed
    /// [`PipelineError::Execution`] naming both the failed nodes and the
    /// consumers that succeeded; [`FailurePolicy::Degrade`] drops the
    /// affected basis settings from the plan (when the frame stays
    /// solvable), renormalizes the reconstruction over the surviving
    /// terms, and returns a [`RunReport`] with [`RunReport::degraded`]
    /// set and the damage itemised in [`RunReport::failures`].
    pub failure: FailurePolicy,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            shots_per_setting: 1000,
            allocation: None,
            method: ReconstructionMethod::Eigenstate,
            postprocess: PostProcess::ClipRenormalize,
            parallel: true,
            dedup: true,
            analysis: AnalysisConfig::default(),
            cache: None,
            retry: RetryPolicy::default(),
            failure: FailurePolicy::default(),
        }
    }
}

impl ExecutionOptions {
    /// Default options running `policy` instead of the uniform protocol.
    pub fn with_allocation(policy: ShotAllocation) -> Self {
        ExecutionOptions {
            allocation: Some(policy),
            ..Default::default()
        }
    }

    /// The allocation policy this run schedules under: the explicit
    /// [`ExecutionOptions::allocation`] when set, the paper's uniform
    /// protocol at [`ExecutionOptions::shots_per_setting`] otherwise.
    pub fn resolved_allocation(&self) -> ShotAllocation {
        self.allocation.unwrap_or(ShotAllocation::Uniform {
            shots_per_setting: self.shots_per_setting,
        })
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct CutRun {
    /// Reconstructed distribution over the full circuit's qubits.
    pub distribution: Distribution,
    /// Accounting (settings, shots, timings).
    pub report: RunReport,
}

/// Result of an uncut reference run.
#[derive(Debug, Clone)]
pub struct UncutRun {
    /// Measured distribution.
    pub distribution: Distribution,
    /// Accounting.
    pub report: UncutReport,
}

/// The high-level executor bound to one backend.
pub struct CutExecutor<'b, B: Backend + ?Sized> {
    backend: &'b B,
}

/// Delivered channels + engine accounting of one gather round.
struct GatherRound {
    upstream: HashMap<u64, Counts>,
    downstream: HashMap<u64, Counts>,
    sic_counts: HashMap<u64, Counts>,
    stats: GraphStats,
    /// Structural hash → cache fingerprint of the pool member the round's
    /// placement assigned each node to (empty on single-backend runs).
    /// Store-back keys each delivered histogram by the member that
    /// measured it, never the pool aggregate — histograms must not cross
    /// member fingerprints.
    member_fingerprints: HashMap<u64, u64>,
}

/// Records one round's delivered histogram into a structural-hash-keyed
/// seed cache, first delivery wins: deduplicated consumers of a shared
/// node hand back the *same* merged histogram, which must seed the next
/// round's node exactly once (merging the duplicates would double-count).
fn seed_once(seeds: &mut HashMap<u64, (Circuit, Counts)>, circuit: Circuit, counts: &Counts) {
    if let Entry::Vacant(e) = seeds.entry(circuit.structural_hash()) {
        e.insert((circuit, counts.clone()));
    }
}

/// Merges one channel's histograms into another (the dedup-off refine
/// path, where the pilot's data cannot ride the engine's seed cache).
fn merge_channel(into: &mut HashMap<u64, Counts>, from: HashMap<u64, Counts>) {
    for (key, counts) in from {
        into.entry(key)
            .and_modify(|mine| mine.merge(&counts))
            .or_insert(counts);
    }
}

/// Attempts to shrink `plan` so that no permanently failed consumer is
/// needed anymore: each lost measurement setting (or preparation) is
/// covered by greedily neglecting the corresponding Pauli at the first
/// cut where [`BasisPlan::try_neglect`] still allows it. Returns `None`
/// when the damage cannot be absorbed:
///
/// * a SIC preparation was lost — the SIC frame is informationally
///   complete, so losing any preparation makes the 4×4 solve singular;
/// * an uncut reference job was lost — there is nothing to renormalize;
/// * every cut position of a lost setting already neglects two bases
///   (dropping the last surviving pair would orphan the identity).
///
/// Detection-channel failures are resolved upstream (the affected cut
/// falls back to `NotGolden`) and are skipped here.
fn degrade_plan(plan: &BasisPlan, failures: &[NodeFailure]) -> Option<BasisPlan> {
    let num_cuts = plan.num_cuts();
    let mut salvaged = plan.clone();
    for failure in failures {
        for &(channel, key) in &failure.consumers {
            match channel {
                Channel::Detection => continue,
                Channel::Uncut | Channel::SicPrep => return None,
                Channel::UpstreamMeas => {
                    let setting = decode_meas(key, num_cuts);
                    // An earlier neglect may already have dropped this
                    // setting from the surviving plan.
                    let needed = setting
                        .iter()
                        .enumerate()
                        .all(|(c, b)| !salvaged.neglected()[c].contains(&b.pauli()));
                    if !needed {
                        continue;
                    }
                    if !setting
                        .iter()
                        .enumerate()
                        .any(|(c, b)| salvaged.try_neglect(c, b.pauli()))
                    {
                        return None;
                    }
                }
                Channel::DownstreamPrep => {
                    let prep = decode_prep(key, num_cuts);
                    let needed = prep
                        .iter()
                        .enumerate()
                        .all(|(c, s)| !salvaged.neglected()[c].contains(&s.pauli()));
                    if !needed {
                        continue;
                    }
                    if !prep
                        .iter()
                        .enumerate()
                        .any(|(c, s)| salvaged.try_neglect(c, s.pauli()))
                    {
                        return None;
                    }
                }
            }
        }
    }
    Some(salvaged)
}

/// Builds the typed [`PipelineError::Execution`] for a run that cannot
/// (or must not) be salvaged: every failed node plus the sorted consumer
/// keys whose data *was* delivered.
fn execution_failure(
    failures: &[NodeFailure],
    upstream: &HashMap<u64, Counts>,
    downstream: &HashMap<u64, Counts>,
    sic_counts: &HashMap<u64, Counts>,
) -> PipelineError {
    let mut succeeded: Vec<ConsumerKey> = upstream
        .keys()
        .map(|&k| (Channel::UpstreamMeas, k))
        .chain(downstream.keys().map(|&k| (Channel::DownstreamPrep, k)))
        .chain(sic_counts.keys().map(|&k| (Channel::SicPrep, k)))
        .collect();
    succeeded.sort_unstable();
    let cause = failures
        .first()
        .map(|f| f.error.clone())
        .unwrap_or(BackendError::Unavailable);
    PipelineError::Execution(ExecutionFailure {
        failed: failures.iter().map(FailureRecord::from).collect(),
        succeeded,
        cause,
    })
}

impl<'b, B: Backend + ?Sized> CutExecutor<'b, B> {
    /// Binds an executor to a backend.
    pub fn new(backend: &'b B) -> Self {
        CutExecutor { backend }
    }

    /// Runs the full pipeline.
    // By-value `policy` keeps call sites literal-friendly
    // (`run(.., GoldenPolicy::Disabled, ..)`); the body only borrows it.
    #[allow(clippy::needless_pass_by_value)]
    pub fn run(
        &self,
        circuit: &Circuit,
        cut: &CutSpec,
        policy: GoldenPolicy,
        options: &ExecutionOptions,
    ) -> Result<CutRun, PipelineError> {
        // Static-analysis gate: lint the workload before a single shot is
        // spent. Deny-level findings abort the run; warnings are carried
        // through to the report.
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        if options.analysis.enabled {
            let diags = analyze_with_backend(circuit, cut, options, self.backend);
            if diags.has_deny() {
                return Err(PipelineError::Analysis(diags));
            }
            diagnostics = diags.into_vec();
        }

        // A cache that failed to load (corrupt/truncated/foreign file)
        // silently became a cold start at open time; surface that as a
        // typed runtime warning so sweeps notice the lost warm state.
        if let Some(cache) = self.warm_cache(options) {
            if let Some(why) = cache.take_degradation() {
                diagnostics.push(Diagnostic {
                    code: LintCode::CacheDegraded,
                    severity: Severity::Warn,
                    message: format!("warm-start cache degraded to a cold start: {why}"),
                });
            }
        }

        let fragments = Fragmenter::fragment(circuit, cut)?;

        // Resolve the golden policy. Online detection runs its sequential
        // batches through the engine and leaves its measurements in
        // `detection_cache` for the main gather to reuse.
        let detect_started = Instant::now();
        let mut detection_cache: HashMap<u64, (Circuit, Counts)> = HashMap::new();
        let mut detection_stats = GraphStats::default();
        // Permanent node failures tolerated so far (only ever non-empty
        // under FailurePolicy::Degrade — the Fail policy aborts at the
        // first failed engine submission).
        let mut failures: Vec<NodeFailure> = Vec::new();
        let plan = match resolve_static_policy(&policy, &fragments.upstream, fragments.num_cuts) {
            Some(plan) => plan,
            None => {
                let GoldenPolicy::DetectOnline(config) = &policy else {
                    unreachable!("only the online policy resolves dynamically");
                };
                self.detect_online(
                    &fragments,
                    *config,
                    options,
                    &mut detection_cache,
                    &mut detection_stats,
                    &mut failures,
                )?
            }
        };
        let detection_seconds = detect_started.elapsed().as_secs_f64();
        let detection_shots = detection_stats.shots_executed;

        // Resolve the allocation policy for the surviving plan (golden
        // detection shrinks the settings the budget divides over). Uniform
        // reproduces the paper's protocol bit-identically; weighted/total
        // policies skew or split a fixed budget, exactly (largest-
        // remainder split); the adaptive policy runs a pilot round first.
        // `normalized` resolves degenerate adaptive fractions into the
        // single-round policy they are bit-identical to.
        let allocation = options.resolved_allocation();
        let effective = allocation.normalized();

        let gather_started = Instant::now();
        let (gather, pilot_shots, rounds) = if let ShotAllocation::Adaptive {
            pilot_fraction,
            total,
        } = effective
        {
            self.gather_adaptive(
                &fragments,
                &plan,
                options,
                pilot_fraction,
                total,
                &detection_cache,
                &mut failures,
            )?
        } else {
            let sched = match options.method {
                ReconstructionMethod::Eigenstate => schedule_for_plan(&plan, effective)?,
                ReconstructionMethod::Sic => schedule_sic(&plan, effective)?,
            };
            let round = self.gather_round(
                &fragments,
                &plan,
                options,
                &sched,
                &detection_cache,
                self.warm_cache(options),
                &mut failures,
            )?;
            (round, 0, 1)
        };
        let GatherRound {
            upstream,
            downstream,
            sic_counts,
            stats: gather_stats,
            member_fingerprints,
        } = gather;
        let gather_seconds = gather_started.elapsed().as_secs_f64();

        // Store the delivered cumulative histograms back into the warm
        // cache so the next run (or sweep point) starts from them, then
        // persist. Delivered totals already include everything — cached,
        // detection-seeded, and fresh shots — and `store` replaces, so
        // re-running never duplicates samples.
        if let Some(cache) = self.warm_cache(options) {
            self.store_back(
                cache,
                &fragments,
                &plan,
                options.method,
                &upstream,
                &downstream,
                &sic_counts,
                &member_fingerprints,
            );
            if cache.config().path.is_some() {
                if let Err(e) = cache.persist() {
                    diagnostics.push(Diagnostic {
                        code: LintCode::CacheDegraded,
                        severity: Severity::Warn,
                        message: format!(
                            "warm-start cache failed to persist ({e}); the next \
                             run starts cold"
                        ),
                    });
                }
            }
        }

        // Graceful degradation: when nodes failed permanently under
        // FailurePolicy::Degrade, shrink the plan until no lost consumer
        // is needed (greedy extra neglects), then verify the surviving
        // plan is fully covered by delivered data. Runs whose damage
        // cannot be absorbed — a lost SIC preparation (informationally
        // complete frame), or a cut already at two neglects — fail with
        // the same typed error the Fail policy raises.
        let planned_terms = plan.all_recon_strings().len();
        let mut degraded = false;
        let plan = if failures.is_empty() {
            plan
        } else {
            let salvaged = degrade_plan(&plan, &failures)
                .ok_or_else(|| execution_failure(&failures, &upstream, &downstream, &sic_counts))?;
            let covered = salvaged
                .all_meas_settings()
                .iter()
                .all(|s| upstream.contains_key(&encode_meas(s)))
                && match options.method {
                    ReconstructionMethod::Eigenstate => salvaged
                        .all_prep_settings()
                        .iter()
                        .all(|p| downstream.contains_key(&encode_prep(p))),
                    ReconstructionMethod::Sic => all_sic_settings(fragments.num_cuts)
                        .iter()
                        .all(|s| sic_counts.contains_key(&encode_sic(s))),
                };
            if !covered {
                return Err(execution_failure(
                    &failures,
                    &upstream,
                    &downstream,
                    &sic_counts,
                ));
            }
            degraded = true;
            salvaged
        };
        let surviving_terms = plan.all_recon_strings().len();
        let variance_inflation = if degraded {
            planned_terms as f64 / surviving_terms.max(1) as f64
        } else {
            1.0
        };
        let failure_records: Vec<FailureRecord> =
            failures.iter().map(FailureRecord::from).collect();

        let upstream_settings = upstream.len();
        let downstream_settings = downstream.len() + sic_counts.len();
        let sic_shots: u64 = sic_counts.values().map(|c| c.total()).sum();
        // The realized per-setting schedule rides in the fragment data
        // (delivered histogram totals — ≥ the requested schedule when
        // detection data was reused or duplicates merged), so downstream
        // variance/CI math sees actual shots per setting, never a nominal
        // mean.
        let data = FragmentData::from_counts(
            upstream,
            downstream,
            gather_stats.simulated_device_time,
            gather_stats.host_time,
        );
        let sic_data = match options.method {
            ReconstructionMethod::Eigenstate => None,
            ReconstructionMethod::Sic => Some(SicData {
                subcircuits: sic_counts.len(),
                // SIC schedules stay per-prep uniform under every policy
                // (the frame solve reads all preps equally), so the mean
                // is the realized budget up to the ±1 apportion remainder.
                shots_per_setting: sic_shots / (sic_counts.len().max(1) as u64),
                counts: sic_counts,
                // Device time is accounted once, on the unified gather
                // stats; the combined graph does not split it per channel.
                simulated_device_time: Duration::ZERO,
            }),
        };

        // Reconstruct.
        let recon_started = Instant::now();
        let up = upstream_tensor(&fragments.upstream, &plan, &data);
        let down = match &sic_data {
            None => downstream_tensor(&fragments.downstream, &plan, &data),
            Some(sic) => sic_downstream_tensor(&fragments.downstream, &plan, sic),
        };
        let raw = contract(&fragments, &plan, &up, &down);
        let distribution = match options.postprocess {
            PostProcess::Raw => raw,
            PostProcess::ClipRenormalize => raw.clip_renormalize(),
            PostProcess::SimplexProjection => raw.project_to_simplex(),
        };
        let reconstruct_seconds = recon_started.elapsed().as_secs_f64();

        // Accounting: engine numbers unify detection and gather.
        let mut engine = detection_stats;
        engine.absorb(&gather_stats);
        let pool_parallel_ratio = engine.pool_parallel_ratio();
        let report = RunReport {
            num_cuts: fragments.num_cuts,
            neglected: plan.neglected().to_vec(),
            allocation,
            upstream_settings,
            downstream_settings,
            subcircuits_executed: upstream_settings + downstream_settings,
            // Fresh device shots for the main gather round only —
            // detection and pilot shots are reported separately, so the
            // fields never double-count a reused measurement.
            total_shots: gather_stats.shots_executed - pilot_shots,
            pilot_shots,
            rounds,
            shots_requested: engine.shots_requested,
            jobs_planned: engine.jobs_planned,
            jobs_executed: engine.jobs_executed,
            shots_saved: engine.shots_saved,
            cache_hits: engine.cache_hits,
            cache_shots_reused: engine.cache_shots_reused,
            states_reused: engine.states_reused,
            gates_applied: engine.gates_applied,
            gates_saved: engine.gates_saved,
            reconstruction_terms: surviving_terms,
            simulated_device_seconds: engine.simulated_device_time.as_secs_f64(),
            gather_seconds,
            reconstruct_seconds,
            detection_shots,
            detection_seconds,
            attempts: engine.attempts,
            jobs_retried: engine.jobs_retried,
            shots_lost: engine.shots_lost,
            backoff_seconds: engine.backoff_wait.as_secs_f64(),
            jobs_per_member: engine.jobs_per_member,
            member_makespan_seconds: engine
                .member_makespan
                .into_iter()
                .map(|d| d.as_secs_f64())
                .collect(),
            pool_parallel_ratio,
            jobs_failed_over: engine.jobs_failed_over,
            degraded,
            failures: failure_records,
            variance_inflation,
            diagnostics,
        };
        Ok(CutRun {
            distribution,
            report,
        })
    }

    /// The warm-start cache this run may consult: the configured one, and
    /// only with dedup on — cache entries are keyed by structural hash,
    /// and only the dedup engine path confirms true circuit equality
    /// before merging histograms, so serving them without it would be
    /// unsound. With dedup off the run is bit-identical to a cache-free
    /// run by construction.
    fn warm_cache<'o>(&self, options: &'o ExecutionOptions) -> Option<&'o WarmCache> {
        options.cache.as_deref().filter(|_| options.dedup)
    }

    /// Stores each delivered setting histogram back into the warm cache,
    /// keyed by `(structural hash, backend fingerprint, discipline)`.
    /// First delivery wins per structural hash: deduplicated settings hand
    /// back the *same* merged node histogram, which must be stored once.
    ///
    /// On a [`qcut_device::pool::BackendPool`] backend the fingerprint is
    /// the *assigned member's* (`member_fingerprints`), never the pool
    /// aggregate — so a later run against any one member (or a re-shuffled
    /// pool) only ever warm-starts from histograms that member's
    /// fingerprint actually measured.
    #[allow(clippy::too_many_arguments)]
    fn store_back(
        &self,
        cache: &WarmCache,
        fragments: &Fragments,
        plan: &BasisPlan,
        method: ReconstructionMethod,
        upstream: &HashMap<u64, Counts>,
        downstream: &HashMap<u64, Counts>,
        sic_counts: &HashMap<u64, Counts>,
        member_fingerprints: &HashMap<u64, u64>,
    ) {
        let fingerprint = self.backend.cache_fingerprint();
        let mut stored: HashSet<u64> = HashSet::new();
        let mut store = |circuit: Circuit, counts: &Counts| {
            let hash = circuit.structural_hash();
            if stored.insert(hash) {
                let member = member_fingerprints
                    .get(&hash)
                    .copied()
                    .unwrap_or(fingerprint);
                let key = CacheKey::new(hash, member, ShotDiscipline::Multinomial);
                cache.store(&key, &circuit, counts);
            }
        };
        for setting in plan.all_meas_settings() {
            if let Some(counts) = upstream.get(&encode_meas(&setting)) {
                store(
                    build_upstream_circuit(&fragments.upstream, &setting),
                    counts,
                );
            }
        }
        match method {
            ReconstructionMethod::Eigenstate => {
                for prep in plan.all_prep_settings() {
                    if let Some(counts) = downstream.get(&encode_prep(&prep)) {
                        store(
                            build_downstream_circuit(&fragments.downstream, &prep),
                            counts,
                        );
                    }
                }
            }
            ReconstructionMethod::Sic => {
                for states in all_sic_settings(fragments.num_cuts) {
                    if let Some(counts) = sic_counts.get(&encode_sic(&states)) {
                        store(build_sic_circuit(&fragments.downstream, &states), counts);
                    }
                }
            }
        }
    }

    /// Plans and executes one gather round through the engine: builds the
    /// graph for `sched` (eigenstate and SIC are different builder
    /// combinations over the same engine — the SIC path registers
    /// upstream + SIC jobs only, never the eigenstate downstream half),
    /// seeds it with prior measurements (online-detection batches for a
    /// first round, the pilot's histograms for an adaptive refine round),
    /// then with any matching `warm` cross-run cache entries, and returns
    /// the delivered channels plus accounting. The engine executes only
    /// each node's missing shots, so same-run seeds count toward the
    /// round's budget as `shots_saved` and warm-cache seeds as
    /// `cache_shots_reused`.
    ///
    /// The engine honors [`ExecutionOptions::retry`]; what still fails
    /// permanently either aborts the round
    /// ([`FailurePolicy::Fail`]) or is pushed onto `failures` while the
    /// salvaged sibling data is delivered ([`FailurePolicy::Degrade`]).
    #[allow(clippy::too_many_arguments)]
    fn gather_round(
        &self,
        fragments: &Fragments,
        plan: &BasisPlan,
        options: &ExecutionOptions,
        sched: &ShotSchedule,
        seeds: &HashMap<u64, (Circuit, Counts)>,
        warm: Option<&WarmCache>,
        failures: &mut Vec<NodeFailure>,
    ) -> Result<GatherRound, PipelineError> {
        let mut graph = if options.dedup {
            JobGraph::new()
        } else {
            JobGraph::without_dedup()
        };
        add_upstream_jobs(&mut graph, fragments, plan, &sched.upstream);
        match options.method {
            ReconstructionMethod::Eigenstate => {
                add_downstream_jobs(&mut graph, fragments, plan, &sched.downstream);
            }
            ReconstructionMethod::Sic => {
                add_sic_jobs(
                    &mut graph,
                    &fragments.downstream,
                    fragments.num_cuts,
                    &sched.downstream,
                );
                assert!(
                    !graph.has_channel(Channel::DownstreamPrep),
                    "SIC planning must never schedule eigenstate downstream jobs"
                );
            }
        }
        for (circuit, counts) in seeds.values() {
            graph.seed_counts(circuit, counts);
        }
        // On a pool backend, cache keys are per *member*: reproduce the
        // placement `execute_pool` will compute (same node order, same
        // max-consumer-demand shots, so the assignment is identical) and
        // key each node by its assigned member's fingerprint. Seeding is
        // shot-accounting only, so the placement the engine computes at
        // execute time is unaffected by what the cache serves here.
        let member_fingerprints = self.member_fingerprints(&graph);
        if let Some(cache) = warm {
            let fingerprint = self.backend.cache_fingerprint();
            let node_circuits: Vec<Circuit> = graph.node_jobs().map(|(c, _)| c.clone()).collect();
            for circuit in node_circuits {
                let hash = circuit.structural_hash();
                let member = member_fingerprints
                    .get(&hash)
                    .copied()
                    .unwrap_or(fingerprint);
                let key = CacheKey::new(hash, member, ShotDiscipline::Multinomial);
                if let Some(counts) = cache.lookup(&key, &circuit) {
                    graph.seed_counts_from_cache(&circuit, &counts);
                }
            }
        }
        let mut grun = match graph.execute_with(self.backend, options.parallel, &options.retry) {
            Ok(run) => run,
            Err(failure) => match options.failure {
                FailurePolicy::Fail => return Err(failure.into()),
                FailurePolicy::Degrade => {
                    let GraphFailure {
                        failures: failed,
                        salvage,
                    } = *failure;
                    failures.extend(failed);
                    salvage
                }
            },
        };
        Ok(GatherRound {
            upstream: grun.take_channel(Channel::UpstreamMeas),
            downstream: grun.take_channel(Channel::DownstreamPrep),
            sic_counts: grun.take_channel(Channel::SicPrep),
            stats: grun.stats,
            member_fingerprints,
        })
    }

    /// Structural hash → member cache fingerprint for every node of a
    /// planned graph when the bound backend is a
    /// [`qcut_device::pool::BackendPool`] (empty map otherwise). Runs the
    /// pool's placement over the same specs `JobGraph::execute_pool` will
    /// build — every node at its maximum consumer demand, in insertion
    /// order — so the assignment here and the one at execute time agree
    /// exactly. Nodes the placement cannot seat (over-capacity) fall back
    /// to the pool's aggregate fingerprint; they fail before submission
    /// anyway, so no histogram is ever stored under it.
    fn member_fingerprints(&self, graph: &JobGraph) -> HashMap<u64, u64> {
        let Some(pool) = self.backend.as_pool() else {
            return HashMap::new();
        };
        let jobs: Vec<(&Circuit, u64)> = graph
            .node_jobs()
            .map(|(circuit, consumers)| {
                let required = consumers.iter().map(|&(_, shots)| shots).max().unwrap_or(0);
                (circuit, required)
            })
            .collect();
        let specs: Vec<JobSpec<'_>> = jobs
            .iter()
            .map(|&(circuit, shots)| JobSpec::new(circuit, shots))
            .collect();
        let placement = pool.place(&specs);
        jobs.iter()
            .zip(&placement.assignment)
            .map(|(&(circuit, _), &member)| {
                let fingerprint = match member {
                    Some(m) => pool.member(m).cache_fingerprint(),
                    None => pool.cache_fingerprint(),
                };
                (circuit.structural_hash(), fingerprint)
            })
            .collect()
    }

    /// The two-round adaptive gather (`ShotAllocation::Adaptive` with an
    /// interior pilot fraction):
    ///
    /// 1. a uniform **pilot** round of `round(pilot_fraction · total)`
    ///    shots runs through the engine (seeded with detection data like
    ///    any gather);
    /// 2. empirical fragment tensors built from the pilot's histograms are
    ///    scored per setting ([`neyman_scores`]) and the remaining budget
    ///    is apportioned `N ∝ √score` by largest remainder;
    /// 3. a **refine** round requests the cumulative per-setting targets,
    ///    seeded with the pilot's delivered histograms — the engine
    ///    executes exactly the refine increments and every consumer
    ///    receives the merged two-round data. (With dedup off, the
    ///    ablation baseline, the seed cache is disabled by design, so the
    ///    round requests only the increments and the pilot's histograms
    ///    are merged into the delivery directly — same data, same total.)
    ///
    /// Returns the final round's channels (cumulative histograms), the
    /// pilot's fresh shot count, and the round count (2).
    #[allow(clippy::too_many_arguments)]
    fn gather_adaptive(
        &self,
        fragments: &Fragments,
        plan: &BasisPlan,
        options: &ExecutionOptions,
        pilot_fraction: f64,
        total: u64,
        detection_cache: &HashMap<u64, (Circuit, Counts)>,
        failures: &mut Vec<NodeFailure>,
    ) -> Result<(GatherRound, u64, usize), PipelineError> {
        let num_cuts = fragments.num_cuts;
        let n_up = plan.all_meas_settings().len();
        let n_down = match options.method {
            ReconstructionMethod::Eigenstate => plan.all_prep_settings().len(),
            ReconstructionMethod::Sic => all_sic_settings(num_cuts).len(),
        };

        // Round 1: the uniform pilot.
        // The warm cache seeds the pilot only: its histograms become part
        // of the pilot's delivered data, which already seeds the refine
        // round below — seeding both rounds would duplicate the samples.
        // A warm pilot is a *free* pilot (the engine executes only the
        // increment beyond the cached shots).
        let pilot = pilot_total(pilot_fraction, total);
        let pilot_sched = pilot_schedule(n_up, n_down, pilot)?;
        let failures_before_pilot = failures.len();
        let pilot_run = self.gather_round(
            fragments,
            plan,
            options,
            &pilot_sched,
            detection_cache,
            self.warm_cache(options),
            failures,
        )?;
        let pilot_degraded = failures.len() > failures_before_pilot;

        // Empirical tensors from the pilot's delivered histograms. A
        // degraded pilot (some settings permanently undelivered under
        // FailurePolicy::Degrade) cannot be scored — the tensors would
        // read absent histograms — so the refine round falls back to the
        // uniform split; the final replan after the gather decides what
        // the reconstruction can still salvage.
        let pilot_data = FragmentData::from_counts(
            pilot_run.upstream.clone(),
            pilot_run.downstream.clone(),
            pilot_run.stats.simulated_device_time,
            pilot_run.stats.host_time,
        );
        let (up_scores, down_scores) = if pilot_degraded {
            (vec![1.0; n_up], vec![1.0; n_down])
        } else {
            let up = upstream_tensor(&fragments.upstream, plan, &pilot_data);
            match options.method {
                ReconstructionMethod::Eigenstate => {
                    let down = downstream_tensor(&fragments.downstream, plan, &pilot_data);
                    let scores = neyman_scores(fragments, plan, &up, &down);
                    (scores.upstream, scores.downstream)
                }
                ReconstructionMethod::Sic => {
                    let sic_shots: u64 = pilot_run.sic_counts.values().map(|c| c.total()).sum();
                    let sic = SicData {
                        subcircuits: pilot_run.sic_counts.len(),
                        shots_per_setting: sic_shots / (pilot_run.sic_counts.len().max(1) as u64),
                        counts: pilot_run.sic_counts.clone(),
                        simulated_device_time: Duration::ZERO,
                    };
                    let down = sic_downstream_tensor(&fragments.downstream, plan, &sic);
                    let scores = neyman_scores(fragments, plan, &up, &down);
                    // SIC preparations are informationally complete and read
                    // uniformly through the frame solve, so only the upstream
                    // half is adaptively skewed (same rule as WeightedByUsage).
                    (scores.upstream, vec![1.0; n_down])
                }
            }
        };

        // Round 2. With dedup on, the refine round requests the
        // *cumulative* Neyman targets and is seeded with the pilot's
        // histograms, so the engine executes exactly the refine increments
        // and delivers the merged two-round data (the pilot reuse shows up
        // as shots_saved). With dedup off — the ablation baseline —
        // `seed_counts` is deliberately a no-op, so the round requests
        // only the increments and the pilot's histograms are merged back
        // into the delivery here: either way both rounds together execute
        // exactly `total` fresh shots.
        let cumulative = refine_schedule(&pilot_sched, &up_scores, &down_scores, total - pilot);
        let mut refine_run = if options.dedup {
            // `get` (not index) throughout: a degraded pilot delivered
            // nothing for its failed settings, which then simply have no
            // seed to ride.
            let mut seeds: HashMap<u64, (Circuit, Counts)> = HashMap::new();
            for setting in plan.all_meas_settings() {
                if let Some(counts) = pilot_run.upstream.get(&encode_meas(&setting)) {
                    seed_once(
                        &mut seeds,
                        build_upstream_circuit(&fragments.upstream, &setting),
                        counts,
                    );
                }
            }
            match options.method {
                ReconstructionMethod::Eigenstate => {
                    for prep in plan.all_prep_settings() {
                        if let Some(counts) = pilot_run.downstream.get(&encode_prep(&prep)) {
                            seed_once(
                                &mut seeds,
                                build_downstream_circuit(&fragments.downstream, &prep),
                                counts,
                            );
                        }
                    }
                }
                ReconstructionMethod::Sic => {
                    for states in all_sic_settings(num_cuts) {
                        if let Some(counts) = pilot_run.sic_counts.get(&encode_sic(&states)) {
                            seed_once(
                                &mut seeds,
                                build_sic_circuit(&fragments.downstream, &states),
                                counts,
                            );
                        }
                    }
                }
            }
            self.gather_round(
                fragments,
                plan,
                options,
                &cumulative,
                &seeds,
                None,
                failures,
            )?
        } else {
            let increments = ShotSchedule {
                upstream: cumulative
                    .upstream
                    .iter()
                    .zip(&pilot_sched.upstream)
                    .map(|(&c, &p)| c - p)
                    .collect(),
                downstream: cumulative
                    .downstream
                    .iter()
                    .zip(&pilot_sched.downstream)
                    .map(|(&c, &p)| c - p)
                    .collect(),
            };
            let mut run = self.gather_round(
                fragments,
                plan,
                options,
                &increments,
                &HashMap::new(),
                None,
                failures,
            )?;
            merge_channel(&mut run.upstream, pilot_data.upstream);
            merge_channel(&mut run.downstream, pilot_data.downstream);
            merge_channel(&mut run.sic_counts, pilot_run.sic_counts.clone());
            run
        };

        let pilot_shots = pilot_run.stats.shots_executed;
        let mut stats = pilot_run.stats;
        stats.absorb(&refine_run.stats);
        refine_run.stats = stats;
        Ok((refine_run, pilot_shots, 2))
    }

    /// Runs the uncut circuit directly (the reference arm of Fig. 3),
    /// routed through the engine like every other execution.
    pub fn run_uncut(&self, circuit: &Circuit, shots: u64) -> Result<UncutRun, PipelineError> {
        self.run_uncut_with(circuit, shots, &RetryPolicy::default())
    }

    /// Like [`CutExecutor::run_uncut`] but honoring a [`RetryPolicy`].
    /// There is no degraded mode for the reference arm — the single
    /// histogram either arrives or the run fails with the typed
    /// [`PipelineError::Execution`].
    pub fn run_uncut_with(
        &self,
        circuit: &Circuit,
        shots: u64,
        retry: &RetryPolicy,
    ) -> Result<UncutRun, PipelineError> {
        let started = Instant::now();
        let graph = uncut_graph(circuit, shots);
        let mut run = graph.execute_with(self.backend, false, retry)?;
        let counts = run
            .take_channel(Channel::Uncut)
            .remove(&0)
            .expect("uncut graph delivers one consumer");
        Ok(UncutRun {
            distribution: counts.to_distribution(),
            report: UncutReport {
                shots,
                simulated_device_seconds: run.stats.simulated_device_time.as_secs_f64(),
                host_seconds: started.elapsed().as_secs_f64(),
            },
        })
    }

    /// Online golden detection: batches of upstream measurements per cut
    /// until every cut reaches a verdict (paper §IV). Each round's settings
    /// are executed as one engine batch; all measurements accumulate in
    /// `cache` (keyed by circuit structural hash) so the main gather can
    /// reuse them, and `stats` absorbs the engine accounting.
    /// Under [`FailurePolicy::Degrade`], a detection batch that fails
    /// permanently (after retries) downgrades the affected cut to
    /// `NotGolden` — the safe verdict: the full basis set stays scheduled
    /// and the failure is itemised in the report — instead of aborting.
    fn detect_online(
        &self,
        fragments: &Fragments,
        config: OnlineConfig,
        options: &ExecutionOptions,
        cache: &mut HashMap<u64, (Circuit, Counts)>,
        stats: &mut GraphStats,
        failures: &mut Vec<NodeFailure>,
    ) -> Result<BasisPlan, PipelineError> {
        let num_cuts = fragments.num_cuts;
        let mut plan = BasisPlan::standard(num_cuts);
        for cut in 0..num_cuts {
            let mut detector = OnlineDetector::new(&fragments.upstream, cut, num_cuts, config);
            loop {
                match detector.verdict() {
                    GoldenVerdict::Golden => {
                        plan.neglect(cut, config.candidate);
                        break;
                    }
                    GoldenVerdict::NotGolden => break,
                    GoldenVerdict::Undecided => {
                        if detector.exhausted() {
                            return Err(PipelineError::DetectionUndecided {
                                cut,
                                shots_spent: detector.min_shots(),
                            });
                        }
                        let settings = detector.required_settings();
                        let circuits: Vec<Circuit> = settings
                            .iter()
                            .map(|s| build_upstream_circuit(&fragments.upstream, s))
                            .collect();
                        let mut graph = if options.dedup {
                            JobGraph::new()
                        } else {
                            JobGraph::without_dedup()
                        };
                        for (setting, circuit) in settings.iter().zip(&circuits) {
                            graph.add_job(
                                circuit.clone(),
                                (Channel::Detection, encode_meas(setting)),
                                config.batch_shots,
                            );
                        }
                        let mut grun = match graph.execute_with(
                            self.backend,
                            options.parallel,
                            &options.retry,
                        ) {
                            Ok(run) => run,
                            Err(failure) => match options.failure {
                                FailurePolicy::Fail => return Err(failure.into()),
                                FailurePolicy::Degrade => {
                                    let GraphFailure {
                                        failures: failed,
                                        salvage,
                                    } = *failure;
                                    failures.extend(failed);
                                    stats.absorb(&salvage.stats);
                                    // NotGolden fallback: keep the full
                                    // basis set for this cut.
                                    break;
                                }
                            },
                        };
                        let mut batch = grun.take_channel(Channel::Detection);
                        stats.absorb(&grun.stats);
                        for (setting, circuit) in settings.iter().zip(circuits) {
                            let counts = batch
                                .remove(&encode_meas(setting))
                                .expect("detection counts per required setting");
                            detector.feed(setting, &counts);
                            match cache.entry(circuit.structural_hash()) {
                                Entry::Occupied(mut e) => {
                                    let (stored, merged) = e.get_mut();
                                    // Merge only on true structural equality —
                                    // a 64-bit hash collision must not mix
                                    // another circuit's histogram in.
                                    if *stored == circuit {
                                        merged.merge(&counts);
                                    }
                                }
                                Entry::Vacant(e) => {
                                    e.insert((circuit, counts));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_device::ideal::IdealBackend;
    use qcut_math::Pauli;
    use qcut_sim::statevector::StateVector;
    use qcut_stats::distance::total_variation_distance;

    fn truth(circuit: &Circuit) -> Distribution {
        let sv = StateVector::from_circuit(circuit);
        Distribution::from_values(circuit.num_qubits(), sv.probabilities())
    }

    fn options(shots: u64) -> ExecutionOptions {
        ExecutionOptions {
            shots_per_setting: shots,
            ..Default::default()
        }
    }

    #[test]
    fn standard_run_reconstructs_the_circuit() {
        let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
        let backend = IdealBackend::new(3);
        let exec = CutExecutor::new(&backend);
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options(20_000))
            .unwrap();
        assert_eq!(run.report.subcircuits_executed, 9);
        assert_eq!(run.report.reconstruction_terms, 4);
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.05, "reconstruction off by {d}");
    }

    #[test]
    fn golden_run_matches_standard_with_fewer_subcircuits() {
        let (circuit, cut) = GoldenAnsatz::new(5, 2).build();
        let backend = IdealBackend::new(4);
        let exec = CutExecutor::new(&backend);
        let golden = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                &options(20_000),
            )
            .unwrap();
        assert_eq!(golden.report.subcircuits_executed, 6);
        assert_eq!(golden.report.reconstruction_terms, 3);
        assert_eq!(golden.report.total_shots, 6 * 20_000);
        let d = total_variation_distance(&golden.distribution, &truth(&circuit));
        assert!(d < 0.05, "golden reconstruction off by {d}");
    }

    #[test]
    fn exact_detection_policy_discovers_y() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let backend = IdealBackend::new(5);
        let exec = CutExecutor::new(&backend);
        let run = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::detect_exact(),
                &options(10_000),
            )
            .unwrap();
        assert!(run.report.neglected[0].contains(&Pauli::Y));
        assert_eq!(run.report.subcircuits_executed, 6);
    }

    #[test]
    fn online_detection_policy_works_end_to_end() {
        let (circuit, cut) = GoldenAnsatz::new(5, 4).build();
        let backend = IdealBackend::new(6);
        let exec = CutExecutor::new(&backend);
        let config = OnlineConfig {
            epsilon: 0.08,
            batch_shots: 3000,
            ..OnlineConfig::default()
        };
        let run = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::DetectOnline(config),
                &options(10_000),
            )
            .unwrap();
        assert!(run.report.neglected[0].contains(&Pauli::Y));
        assert!(run.report.detection_shots > 0);
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.06, "online-detected reconstruction off by {d}");
    }

    #[test]
    fn sic_method_reconstructs() {
        let (circuit, cut) = GoldenAnsatz::new(5, 5).build();
        let backend = IdealBackend::new(7);
        let exec = CutExecutor::new(&backend);
        let opts = ExecutionOptions {
            shots_per_setting: 40_000,
            method: ReconstructionMethod::Sic,
            ..Default::default()
        };
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();
        // 3 upstream + 4 SIC preparations.
        assert_eq!(run.report.subcircuits_executed, 7);
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.06, "SIC reconstruction off by {d}");
    }

    #[test]
    fn postprocess_raw_preserves_quasi_character() {
        let (circuit, cut) = GoldenAnsatz::new(5, 6).build();
        let backend = IdealBackend::new(8);
        let exec = CutExecutor::new(&backend);
        let opts = ExecutionOptions {
            shots_per_setting: 500, // deliberately noisy
            postprocess: PostProcess::Raw,
            ..Default::default()
        };
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();
        // Mass ≈ 1 but entries may dip negative; clipping fixes it.
        assert!((run.distribution.total_mass() - 1.0).abs() < 0.05);
        let clipped = run.distribution.clip_renormalize();
        assert!(clipped.is_proper(1e-9));
    }

    #[test]
    fn uncut_reference_run() {
        let (circuit, _) = GoldenAnsatz::new(5, 7).build();
        let backend = IdealBackend::new(9);
        let exec = CutExecutor::new(&backend);
        let run = exec.run_uncut(&circuit, 30_000).unwrap();
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.03);
        assert_eq!(run.report.shots, 30_000);
    }

    #[test]
    fn invalid_cut_is_reported() {
        let (circuit, _) = GoldenAnsatz::new(5, 0).build();
        let backend = IdealBackend::new(0);
        let exec = CutExecutor::new(&backend);
        let bad = CutSpec::single(0, 99);
        let err = exec
            .run(&circuit, &bad, GoldenPolicy::Disabled, &options(100))
            .unwrap_err();
        // The static-analysis gate catches the invalid cut (QA101) before
        // fragmenting even starts.
        let PipelineError::Analysis(diags) = err else {
            panic!("expected analysis rejection, got {err:?}");
        };
        assert!(diags.contains(crate::analysis::LintCode::InvalidCut));
    }

    #[test]
    fn invalid_cut_is_reported_as_fragment_error_when_analysis_is_off() {
        let (circuit, _) = GoldenAnsatz::new(5, 0).build();
        let backend = IdealBackend::new(0);
        let exec = CutExecutor::new(&backend);
        let bad = CutSpec::single(0, 99);
        let opts = ExecutionOptions {
            shots_per_setting: 100,
            analysis: AnalysisConfig::disabled(),
            ..Default::default()
        };
        let err = exec
            .run(&circuit, &bad, GoldenPolicy::Disabled, &opts)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Fragment(_)));
    }

    #[test]
    fn fault_free_default_run_has_clean_fault_accounting() {
        let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
        let backend = IdealBackend::new(3);
        let run = CutExecutor::new(&backend)
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options(2000))
            .unwrap();
        assert_eq!(run.report.attempts, run.report.jobs_executed as u64);
        assert_eq!(run.report.jobs_retried, 0);
        assert_eq!(run.report.shots_lost, 0);
        assert_eq!(run.report.backoff_seconds, 0.0);
        assert!(!run.report.degraded);
        assert!(run.report.failures.is_empty());
        assert_eq!(run.report.variance_inflation, 1.0);
    }

    #[test]
    fn transient_faults_retry_to_a_bit_identical_run() {
        use crate::retry::Backoff;
        use qcut_device::fault::FaultInjectingBackend;
        let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
        // Every subcircuit fails its first two submissions, then recovers.
        let flaky = FaultInjectingBackend::new(IdealBackend::new(3)).fail_first(2);
        let opts = ExecutionOptions {
            shots_per_setting: 5000,
            retry: RetryPolicy {
                max_attempts: 4,
                backoff: Backoff::Fixed(Duration::from_millis(10)),
                per_job_timeout: None,
            },
            ..Default::default()
        };
        let run = CutExecutor::new(&flaky)
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();

        let clean = IdealBackend::new(3);
        let reference = CutExecutor::new(&clean)
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options(5000))
            .unwrap();
        let d = total_variation_distance(&run.distribution, &reference.distribution);
        assert_eq!(d, 0.0, "recovered run must be bit-identical, off by {d}");

        assert!(!run.report.degraded);
        assert!(run.report.failures.is_empty());
        assert_eq!(run.report.variance_inflation, 1.0);
        // 9 nodes × (2 failures + 1 success): 27 attempts, 18 of them retries.
        assert_eq!(run.report.jobs_retried, 18);
        assert_eq!(run.report.attempts, 27);
        assert_eq!(run.report.shots_lost, 0);
        // Backoff is accounting, never slept: two retry rounds × 10 ms
        // (failed nodes re-submit together, one delay per round).
        assert!((run.report.backoff_seconds - 0.02).abs() < 1e-12);
    }

    #[test]
    fn degrade_salvages_a_permanently_failed_meas_setting() {
        use crate::basis::MeasBasis;
        use crate::tomography::build_upstream_circuit;
        use qcut_device::fault::FaultInjectingBackend;
        let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let y_circuit = build_upstream_circuit(&frags.upstream, &[MeasBasis::Y]);
        // The Y-measurement subcircuit fails on every attempt.
        let backend =
            FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, u32::MAX);
        let opts = ExecutionOptions {
            shots_per_setting: 20_000,
            retry: RetryPolicy::with_attempts(2),
            failure: FailurePolicy::Degrade,
            ..Default::default()
        };
        let run = CutExecutor::new(&backend)
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();

        assert!(run.report.degraded);
        assert_eq!(run.report.failures.len(), 1);
        assert_eq!(run.report.failures[0].attempts, 2);
        assert!(run.report.shots_lost > 0);
        // The lost setting was neglected and the reconstruction
        // renormalized over the survivors: 4 → 3 terms, variance ×4/3.
        assert!(run.report.neglected[0].contains(&Pauli::Y));
        assert_eq!(run.report.reconstruction_terms, 3);
        assert!((run.report.variance_inflation - 4.0 / 3.0).abs() < 1e-12);
        // The ansatz is golden at Y, so dropping it is exact in the limit.
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.05, "degraded reconstruction off by {d}");
    }

    #[test]
    fn fail_policy_raises_a_typed_execution_error() {
        use crate::basis::MeasBasis;
        use crate::tomography::build_upstream_circuit;
        use qcut_device::fault::FaultInjectingBackend;
        let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let y_circuit = build_upstream_circuit(&frags.upstream, &[MeasBasis::Y]);
        let backend =
            FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, u32::MAX);
        let opts = ExecutionOptions {
            shots_per_setting: 2000,
            retry: RetryPolicy::with_attempts(3),
            ..Default::default()
        };
        let err = CutExecutor::new(&backend)
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap_err();
        let PipelineError::Execution(failure) = err else {
            panic!("expected a typed execution failure, got {err:?}");
        };
        assert_eq!(failure.failed.len(), 1);
        assert_eq!(failure.failed[0].attempts, 3);
        // The 8 surviving subcircuits are named as salvaged consumers.
        assert_eq!(failure.succeeded.len(), 8);
        assert!(matches!(failure.cause, BackendError::Transient { .. }));
    }

    #[test]
    fn report_timing_fields_are_populated() {
        let (circuit, cut) = GoldenAnsatz::new(5, 8).build();
        let backend = IdealBackend::new(10);
        let exec = CutExecutor::new(&backend);
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options(1000))
            .unwrap();
        assert!(run.report.gather_seconds > 0.0);
        assert!(run.report.reconstruct_seconds >= 0.0);
        assert!(run.report.total_host_seconds() > 0.0);
    }
}
