//! The high-level cutting pipeline: circuit + cut + policy → reconstructed
//! distribution + accounting.
//!
//! ```text
//! CutExecutor::run
//!   ├─ validate & fragment the circuit
//!   ├─ resolve the golden policy into a BasisPlan
//!   │    (a priori / exact simulation / online sequential detection)
//!   ├─ build the ExperimentPlan (subcircuit variants)
//!   ├─ gather fragment data on the backend (parallel)
//!   ├─ reconstruct (tensor contraction, Eq. 14)
//!   └─ post-process the quasi-distribution
//! ```

use crate::basis::BasisPlan;
use crate::error::PipelineError;
use crate::execution::gather;
use crate::fragment::{Fragmenter, Fragments};
use crate::golden::{
    resolve_static_policy, GoldenPolicy, GoldenVerdict, OnlineConfig, OnlineDetector,
};
use crate::reconstruction::{contract, downstream_tensor, upstream_tensor};
use crate::report::{RunReport, UncutReport};
use crate::sic::{gather_sic, sic_downstream_tensor};
use crate::tomography::{build_upstream_circuit, ExperimentPlan};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_device::backend::Backend;
use qcut_stats::distribution::Distribution;
use std::time::Instant;

/// Downstream preparation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconstructionMethod {
    /// Pauli eigenstate preparations: `6^{K_r} 4^{K_g}` subcircuits
    /// (the paper's scheme; golden cuts shrink it).
    #[default]
    Eigenstate,
    /// SIC preparations: always `4^K` subcircuits, linear solve during
    /// assembly (paper §II-B's alternative).
    Sic,
}

/// Post-processing applied to the reconstructed quasi-distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostProcess {
    /// Return the raw quasi-distribution (may have negative entries).
    Raw,
    /// Clip negatives and renormalise.
    #[default]
    ClipRenormalize,
    /// Euclidean projection onto the probability simplex.
    SimplexProjection,
}

/// Knobs for one pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionOptions {
    /// Shots for every subcircuit setting (the paper uses 1 000 for the
    /// runtime experiments and 10 000 for the accuracy experiment).
    pub shots_per_setting: u64,
    /// Downstream preparation scheme.
    pub method: ReconstructionMethod,
    /// Post-processing step.
    pub postprocess: PostProcess,
    /// Fan subcircuits out over the rayon pool.
    pub parallel: bool,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            shots_per_setting: 1000,
            method: ReconstructionMethod::Eigenstate,
            postprocess: PostProcess::ClipRenormalize,
            parallel: true,
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct CutRun {
    /// Reconstructed distribution over the full circuit's qubits.
    pub distribution: Distribution,
    /// Accounting (settings, shots, timings).
    pub report: RunReport,
}

/// Result of an uncut reference run.
#[derive(Debug, Clone)]
pub struct UncutRun {
    /// Measured distribution.
    pub distribution: Distribution,
    /// Accounting.
    pub report: UncutReport,
}

/// The high-level executor bound to one backend.
pub struct CutExecutor<'b, B: Backend + ?Sized> {
    backend: &'b B,
}

impl<'b, B: Backend + ?Sized> CutExecutor<'b, B> {
    /// Binds an executor to a backend.
    pub fn new(backend: &'b B) -> Self {
        CutExecutor { backend }
    }

    /// Runs the full pipeline.
    pub fn run(
        &self,
        circuit: &Circuit,
        cut: &CutSpec,
        policy: GoldenPolicy,
        options: &ExecutionOptions,
    ) -> Result<CutRun, PipelineError> {
        let fragments = Fragmenter::fragment(circuit, cut)?;

        // Resolve the golden policy.
        let detect_started = Instant::now();
        let mut detection_shots = 0u64;
        let plan = match resolve_static_policy(&policy, &fragments.upstream, fragments.num_cuts) {
            Some(plan) => plan,
            None => {
                let GoldenPolicy::DetectOnline(config) = &policy else {
                    unreachable!("only the online policy resolves dynamically");
                };
                self.detect_online(&fragments, *config, &mut detection_shots)?
            }
        };
        let detection_seconds = detect_started.elapsed().as_secs_f64();

        // Gather fragment data.
        let gather_started = Instant::now();
        let (data, sic_data) = match options.method {
            ReconstructionMethod::Eigenstate => {
                let experiment = ExperimentPlan::build(&fragments, &plan);
                let data = gather(
                    self.backend,
                    &experiment,
                    options.shots_per_setting,
                    options.parallel,
                )?;
                (data, None)
            }
            ReconstructionMethod::Sic => {
                // Upstream is unchanged; downstream uses SIC preparations.
                let experiment = ExperimentPlan::build(&fragments, &plan);
                let upstream_only = ExperimentPlan {
                    upstream: experiment.upstream,
                    downstream: Vec::new(),
                };
                let data = gather(
                    self.backend,
                    &upstream_only,
                    options.shots_per_setting,
                    options.parallel,
                )?;
                let sic = gather_sic(
                    self.backend,
                    &fragments.downstream,
                    fragments.num_cuts,
                    options.shots_per_setting,
                    options.parallel,
                )?;
                (data, Some(sic))
            }
        };
        let gather_seconds = gather_started.elapsed().as_secs_f64();

        // Reconstruct.
        let recon_started = Instant::now();
        let up = upstream_tensor(&fragments.upstream, &plan, &data);
        let down = match &sic_data {
            None => downstream_tensor(&fragments.downstream, &plan, &data),
            Some(sic) => sic_downstream_tensor(&fragments.downstream, &plan, sic),
        };
        let raw = contract(&fragments, &plan, &up, &down);
        let distribution = match options.postprocess {
            PostProcess::Raw => raw,
            PostProcess::ClipRenormalize => raw.clip_renormalize(),
            PostProcess::SimplexProjection => raw.project_to_simplex(),
        };
        let reconstruct_seconds = recon_started.elapsed().as_secs_f64();

        // Accounting.
        let (downstream_settings, extra_sim_time, extra_shots) = match &sic_data {
            None => (data.downstream.len(), 0.0, 0),
            Some(sic) => (
                sic.subcircuits,
                sic.simulated_device_time.as_secs_f64(),
                sic.subcircuits as u64 * sic.shots_per_setting,
            ),
        };
        let report = RunReport {
            num_cuts: fragments.num_cuts,
            neglected: plan.neglected().to_vec(),
            upstream_settings: data.upstream.len(),
            downstream_settings,
            subcircuits_executed: data.upstream.len() + downstream_settings,
            total_shots: data.upstream.len() as u64 * options.shots_per_setting
                + if sic_data.is_none() {
                    data.downstream.len() as u64 * options.shots_per_setting
                } else {
                    extra_shots
                },
            reconstruction_terms: plan.all_recon_strings().len(),
            simulated_device_seconds: data.simulated_device_time.as_secs_f64() + extra_sim_time,
            gather_seconds,
            reconstruct_seconds,
            detection_shots,
            detection_seconds,
        };
        Ok(CutRun {
            distribution,
            report,
        })
    }

    /// Runs the uncut circuit directly (the reference arm of Fig. 3).
    pub fn run_uncut(&self, circuit: &Circuit, shots: u64) -> Result<UncutRun, PipelineError> {
        let started = Instant::now();
        let result = self.backend.run(circuit, shots)?;
        Ok(UncutRun {
            distribution: result.counts.to_distribution(),
            report: UncutReport {
                shots,
                simulated_device_seconds: result.simulated_duration.as_secs_f64(),
                host_seconds: started.elapsed().as_secs_f64(),
            },
        })
    }

    /// Online golden detection: batches of upstream measurements per cut
    /// until every cut reaches a verdict (paper §IV).
    fn detect_online(
        &self,
        fragments: &Fragments,
        config: OnlineConfig,
        detection_shots: &mut u64,
    ) -> Result<BasisPlan, PipelineError> {
        let num_cuts = fragments.num_cuts;
        let mut plan = BasisPlan::standard(num_cuts);
        for cut in 0..num_cuts {
            let mut detector = OnlineDetector::new(&fragments.upstream, cut, num_cuts, config);
            loop {
                match detector.verdict() {
                    GoldenVerdict::Golden => {
                        plan.neglect(cut, config.candidate);
                        break;
                    }
                    GoldenVerdict::NotGolden => break,
                    GoldenVerdict::Undecided => {
                        if detector.exhausted() {
                            return Err(PipelineError::DetectionUndecided {
                                cut,
                                shots_spent: detector.min_shots(),
                            });
                        }
                        for setting in detector.required_settings() {
                            let circuit = build_upstream_circuit(&fragments.upstream, &setting);
                            let result = self.backend.run(&circuit, config.batch_shots)?;
                            *detection_shots += config.batch_shots;
                            detector.feed(&setting, &result.counts);
                        }
                    }
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_device::ideal::IdealBackend;
    use qcut_math::Pauli;
    use qcut_sim::statevector::StateVector;
    use qcut_stats::distance::total_variation_distance;

    fn truth(circuit: &Circuit) -> Distribution {
        let sv = StateVector::from_circuit(circuit);
        Distribution::from_values(circuit.num_qubits(), sv.probabilities())
    }

    fn options(shots: u64) -> ExecutionOptions {
        ExecutionOptions {
            shots_per_setting: shots,
            ..Default::default()
        }
    }

    #[test]
    fn standard_run_reconstructs_the_circuit() {
        let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
        let backend = IdealBackend::new(3);
        let exec = CutExecutor::new(&backend);
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options(20_000))
            .unwrap();
        assert_eq!(run.report.subcircuits_executed, 9);
        assert_eq!(run.report.reconstruction_terms, 4);
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.05, "reconstruction off by {d}");
    }

    #[test]
    fn golden_run_matches_standard_with_fewer_subcircuits() {
        let (circuit, cut) = GoldenAnsatz::new(5, 2).build();
        let backend = IdealBackend::new(4);
        let exec = CutExecutor::new(&backend);
        let golden = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                &options(20_000),
            )
            .unwrap();
        assert_eq!(golden.report.subcircuits_executed, 6);
        assert_eq!(golden.report.reconstruction_terms, 3);
        assert_eq!(golden.report.total_shots, 6 * 20_000);
        let d = total_variation_distance(&golden.distribution, &truth(&circuit));
        assert!(d < 0.05, "golden reconstruction off by {d}");
    }

    #[test]
    fn exact_detection_policy_discovers_y() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let backend = IdealBackend::new(5);
        let exec = CutExecutor::new(&backend);
        let run = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::detect_exact(),
                &options(10_000),
            )
            .unwrap();
        assert!(run.report.neglected[0].contains(&Pauli::Y));
        assert_eq!(run.report.subcircuits_executed, 6);
    }

    #[test]
    fn online_detection_policy_works_end_to_end() {
        let (circuit, cut) = GoldenAnsatz::new(5, 4).build();
        let backend = IdealBackend::new(6);
        let exec = CutExecutor::new(&backend);
        let config = OnlineConfig {
            epsilon: 0.08,
            batch_shots: 3000,
            ..OnlineConfig::default()
        };
        let run = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::DetectOnline(config),
                &options(10_000),
            )
            .unwrap();
        assert!(run.report.neglected[0].contains(&Pauli::Y));
        assert!(run.report.detection_shots > 0);
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.06, "online-detected reconstruction off by {d}");
    }

    #[test]
    fn sic_method_reconstructs() {
        let (circuit, cut) = GoldenAnsatz::new(5, 5).build();
        let backend = IdealBackend::new(7);
        let exec = CutExecutor::new(&backend);
        let opts = ExecutionOptions {
            shots_per_setting: 40_000,
            method: ReconstructionMethod::Sic,
            ..Default::default()
        };
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();
        // 3 upstream + 4 SIC preparations.
        assert_eq!(run.report.subcircuits_executed, 7);
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.06, "SIC reconstruction off by {d}");
    }

    #[test]
    fn postprocess_raw_preserves_quasi_character() {
        let (circuit, cut) = GoldenAnsatz::new(5, 6).build();
        let backend = IdealBackend::new(8);
        let exec = CutExecutor::new(&backend);
        let opts = ExecutionOptions {
            shots_per_setting: 500, // deliberately noisy
            postprocess: PostProcess::Raw,
            ..Default::default()
        };
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();
        // Mass ≈ 1 but entries may dip negative; clipping fixes it.
        assert!((run.distribution.total_mass() - 1.0).abs() < 0.05);
        let clipped = run.distribution.clip_renormalize();
        assert!(clipped.is_proper(1e-9));
    }

    #[test]
    fn uncut_reference_run() {
        let (circuit, _) = GoldenAnsatz::new(5, 7).build();
        let backend = IdealBackend::new(9);
        let exec = CutExecutor::new(&backend);
        let run = exec.run_uncut(&circuit, 30_000).unwrap();
        let d = total_variation_distance(&run.distribution, &truth(&circuit));
        assert!(d < 0.03);
        assert_eq!(run.report.shots, 30_000);
    }

    #[test]
    fn invalid_cut_is_reported() {
        let (circuit, _) = GoldenAnsatz::new(5, 0).build();
        let backend = IdealBackend::new(0);
        let exec = CutExecutor::new(&backend);
        let bad = CutSpec::single(0, 99);
        let err = exec
            .run(&circuit, &bad, GoldenPolicy::Disabled, &options(100))
            .unwrap_err();
        assert!(matches!(err, PipelineError::Fragment(_)));
    }

    #[test]
    fn report_timing_fields_are_populated() {
        let (circuit, cut) = GoldenAnsatz::new(5, 8).build();
        let backend = IdealBackend::new(10);
        let exec = CutExecutor::new(&backend);
        let run = exec
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options(1000))
            .unwrap();
        assert!(run.report.gather_seconds > 0.0);
        assert!(run.report.reconstruct_seconds >= 0.0);
        assert!(run.report.total_host_seconds() > 0.0);
    }
}
