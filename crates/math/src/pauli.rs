//! The Pauli basis `{I, X, Y, Z}` and Pauli strings.
//!
//! Circuit cutting expands the identity channel on the cut wire in this
//! basis (paper Eq. 1/3): `ρ = ½ Σ_M tr(Mρ) M`. Everything the cutting crate
//! needs about Paulis — matrices, eigendecompositions, products — lives here.

use crate::complex::{c64, Complex};
use crate::matrix::Matrix;
use std::fmt;

/// One single-qubit Pauli operator.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

impl Pauli {
    /// All four Paulis in the order used throughout the crate.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The non-identity Paulis (distinct measurement settings).
    pub const NONTRIVIAL: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// The 2×2 matrix of this Pauli.
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => {
                Matrix::two_by_two(Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO)
            }
            Pauli::Y => {
                Matrix::two_by_two(Complex::ZERO, c64(0.0, -1.0), c64(0.0, 1.0), Complex::ZERO)
            }
            Pauli::Z => {
                Matrix::two_by_two(Complex::ONE, Complex::ZERO, Complex::ZERO, c64(-1.0, 0.0))
            }
        }
    }

    /// Eigenvalues of this Pauli, paired with [`Pauli::eigenstate`].
    ///
    /// For `I` both eigenvalues are `+1` (the paper's Eq. 6 sums `r = ±1`
    /// for traceless Paulis but `I` contributes both computational states
    /// with weight `+1`).
    pub fn eigenvalues(self) -> [f64; 2] {
        match self {
            Pauli::I => [1.0, 1.0],
            _ => [1.0, -1.0],
        }
    }

    /// Eigenstate `index ∈ {0, 1}` as a normalised 2-vector.
    ///
    /// Ordering convention: index 0 is the `+1` eigenstate (`|0>`, `|+>`,
    /// `|+i>`) and index 1 is the second one (`|1>`, `|->`, `|-i>`); for `I`
    /// the computational basis is used.
    pub fn eigenstate(self, index: usize) -> [Complex; 2] {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match (self, index) {
            (Pauli::I, 0) | (Pauli::Z, 0) => [Complex::ONE, Complex::ZERO],
            (Pauli::I, 1) | (Pauli::Z, 1) => [Complex::ZERO, Complex::ONE],
            (Pauli::X, 0) => [c64(s, 0.0), c64(s, 0.0)],
            (Pauli::X, 1) => [c64(s, 0.0), c64(-s, 0.0)],
            (Pauli::Y, 0) => [c64(s, 0.0), c64(0.0, s)],
            (Pauli::Y, 1) => [c64(s, 0.0), c64(0.0, -s)],
            _ => panic!("eigenstate index must be 0 or 1"),
        }
    }

    /// Projector `|v><v|` onto eigenstate `index`.
    pub fn eigenprojector(self, index: usize) -> Matrix {
        let v = self.eigenstate(index);
        Matrix::from_rows(
            2,
            2,
            vec![
                v[0] * v[0].conj(),
                v[0] * v[1].conj(),
                v[1] * v[0].conj(),
                v[1] * v[1].conj(),
            ],
        )
    }

    /// Single-character label.
    pub fn label(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }

    /// Parses `'I' | 'X' | 'Y' | 'Z'` (case-insensitive).
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// Product of two Paulis as `(phase, pauli)` with `σ_a σ_b = phase · σ_c`.
    pub fn product(self, other: Pauli) -> (Complex, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (Complex::ONE, p),
            (a, b) if a == b => (Complex::ONE, I),
            (X, Y) => (Complex::I, Z),
            (Y, X) => (-Complex::I, Z),
            (Y, Z) => (Complex::I, X),
            (Z, Y) => (-Complex::I, X),
            (Z, X) => (Complex::I, Y),
            (X, Z) => (-Complex::I, Y),
            _ => unreachable!(),
        }
    }

    /// Whether two Paulis commute.
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A tensor product of single-qubit Paulis, e.g. `XIZ`.
///
/// Index 0 is qubit 0 (little-endian in the matrix representation: qubit 0
/// is the least significant bit, so `matrix()` is `p[n-1] ⊗ … ⊗ p[0]`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Builds a string from per-qubit Paulis (index = qubit).
    pub fn new(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Parses a label like `"XIZ"`. The **leftmost** character is the
    /// highest-indexed qubit, matching the conventional reading order.
    pub fn parse(label: &str) -> Option<Self> {
        let mut paulis: Vec<Pauli> = label.chars().map(Pauli::from_char).collect::<Option<_>>()?;
        paulis.reverse();
        Some(PauliString { paulis })
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.paulis.len()
    }

    /// True for the empty string.
    pub fn is_empty(&self) -> bool {
        self.paulis.is_empty()
    }

    /// Pauli on qubit `q`.
    pub fn get(&self, q: usize) -> Pauli {
        self.paulis[q]
    }

    /// Replaces the Pauli on qubit `q`.
    pub fn set(&mut self, q: usize, p: Pauli) {
        self.paulis[q] = p;
    }

    /// Per-qubit Paulis (index = qubit).
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// Full `2^n × 2^n` matrix (little-endian qubit order).
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        for p in self.paulis.iter().rev() {
            m = m.kron(&p.matrix());
        }
        m
    }

    /// Whether the strings commute (Pauli strings commute iff they
    /// anticommute on an even number of positions).
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.len(), other.len(), "pauli string length mismatch");
        let anti = self
            .paulis
            .iter()
            .zip(&other.paulis)
            .filter(|(a, b)| !a.commutes_with(**b))
            .count();
        anti % 2 == 0
    }

    /// Enumerates all `4^n` Pauli strings on `n` qubits in lexicographic
    /// (I<X<Y<Z per qubit, qubit 0 fastest) order.
    pub fn enumerate(n: usize) -> impl Iterator<Item = PauliString> {
        let total = 4usize.pow(n as u32);
        (0..total).map(move |mut idx| {
            let mut paulis = Vec::with_capacity(n);
            for _ in 0..n {
                paulis.push(Pauli::ALL[idx % 4]);
                idx /= 4;
            }
            PauliString { paulis }
        })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.paulis.iter().rev() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn pauli_matrices_are_unitary_and_hermitian() {
        for p in Pauli::ALL {
            let m = p.matrix();
            assert!(m.is_unitary(TOL), "{p} not unitary");
            assert!(m.is_hermitian(TOL), "{p} not hermitian");
        }
    }

    #[test]
    fn pauli_squares_to_identity() {
        for p in Pauli::ALL {
            let m = p.matrix();
            assert!(m.matmul(&m).approx_eq(&Matrix::identity(2), TOL));
        }
    }

    #[test]
    fn nontrivial_paulis_are_traceless() {
        for p in Pauli::NONTRIVIAL {
            assert!(p.matrix().trace().abs() < TOL, "{p} should be traceless");
        }
        assert!((Pauli::I.matrix().trace().re - 2.0).abs() < TOL);
    }

    #[test]
    fn eigendecomposition_reconstructs_pauli() {
        // M = Σ_r r |v_r><v_r| (paper's spectral decomposition, Eq. 6).
        for p in Pauli::ALL {
            let evs = p.eigenvalues();
            let sum = &p.eigenprojector(0).scale(c64(evs[0], 0.0))
                + &p.eigenprojector(1).scale(c64(evs[1], 0.0));
            assert!(
                sum.approx_eq(&p.matrix(), TOL),
                "spectral decomposition failed for {p}"
            );
        }
    }

    #[test]
    fn eigenstates_are_orthonormal_for_traceless_paulis() {
        for p in Pauli::NONTRIVIAL {
            let a = p.eigenstate(0);
            let b = p.eigenstate(1);
            let na: f64 = a.iter().map(|z| z.norm_sqr()).sum();
            let nb: f64 = b.iter().map(|z| z.norm_sqr()).sum();
            let ip = a[0].conj() * b[0] + a[1].conj() * b[1];
            assert!((na - 1.0).abs() < TOL);
            assert!((nb - 1.0).abs() < TOL);
            assert!(ip.abs() < TOL, "eigenstates of {p} not orthogonal");
        }
    }

    #[test]
    fn eigenstate_is_actual_eigenvector() {
        for p in Pauli::ALL {
            let m = p.matrix();
            for idx in 0..2 {
                let v = p.eigenstate(idx);
                let got = m.matvec(&v);
                let ev = p.eigenvalues()[idx];
                assert!(got[0].approx_eq(v[0] * ev, TOL), "{p} index {idx}");
                assert!(got[1].approx_eq(v[1] * ev, TOL), "{p} index {idx}");
            }
        }
    }

    #[test]
    fn product_table_matches_matrices() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (phase, c) = a.product(b);
                let want = a.matrix().matmul(&b.matrix());
                let got = c.matrix().scale(phase);
                assert!(got.approx_eq(&want, TOL), "{a}*{b} != {phase}*{c}");
            }
        }
    }

    #[test]
    fn commutation_matches_matrices() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let ab = a.matrix().matmul(&b.matrix());
                let ba = b.matrix().matmul(&a.matrix());
                let commutes = ab.approx_eq(&ba, TOL);
                assert_eq!(commutes, a.commutes_with(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn pauli_basis_is_orthogonal_under_hilbert_schmidt() {
        // tr(P Q) = 2 δ_{PQ}: the expansion ρ = ½ Σ tr(Mρ) M relies on this.
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let t = a.matrix().trace_product(&b.matrix());
                if a == b {
                    assert!((t.re - 2.0).abs() < TOL && t.im.abs() < TOL);
                } else {
                    assert!(t.abs() < TOL, "tr({a}{b}) should vanish");
                }
            }
        }
    }

    #[test]
    fn pauli_expansion_recovers_arbitrary_single_qubit_state() {
        // ρ = ½ Σ_M tr(Mρ) M — the identity behind wire cutting (Eq. 3).
        let rho = Matrix::from_rows(
            2,
            2,
            vec![c64(0.6, 0.0), c64(0.1, 0.2), c64(0.1, -0.2), c64(0.4, 0.0)],
        );
        let mut sum = Matrix::zeros(2, 2);
        for p in Pauli::ALL {
            let coeff = p.matrix().trace_product(&rho);
            sum = &sum + &p.matrix().scale(coeff * 0.5);
        }
        assert!(sum.approx_eq(&rho, TOL));
    }

    #[test]
    fn string_parse_and_display_round_trip() {
        let s = PauliString::parse("XIZY").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_string(), "XIZY");
        // Leftmost char is the highest qubit.
        assert_eq!(s.get(3), Pauli::X);
        assert_eq!(s.get(0), Pauli::Y);
        assert_eq!(s.weight(), 3);
        assert!(PauliString::parse("AB").is_none());
    }

    #[test]
    fn string_matrix_matches_kron() {
        let s = PauliString::parse("XZ").unwrap(); // X on qubit 1, Z on qubit 0
        let want = Pauli::X.matrix().kron(&Pauli::Z.matrix());
        assert!(s.matrix().approx_eq(&want, TOL));
    }

    #[test]
    fn string_commutation() {
        let xx = PauliString::parse("XX").unwrap();
        let zz = PauliString::parse("ZZ").unwrap();
        let zi = PauliString::parse("ZI").unwrap();
        assert!(xx.commutes_with(&zz)); // two anticommuting positions
        assert!(!xx.commutes_with(&zi)); // one anticommuting position
    }

    #[test]
    fn enumerate_counts_and_uniqueness() {
        let all: Vec<_> = PauliString::enumerate(2).collect();
        assert_eq!(all.len(), 16);
        let uniq: std::collections::HashSet<_> = all.iter().map(|s| s.to_string()).collect();
        assert_eq!(uniq.len(), 16);
        assert_eq!(all[0].to_string(), "II");
    }
}
