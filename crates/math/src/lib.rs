//! # qcut-math
//!
//! Numerical substrate for the `qcut` workspace: complex arithmetic, dense
//! complex linear algebra, the Pauli basis, named preparation states
//! (Pauli eigenstates and SIC states), QR decomposition, Haar-random
//! unitaries, and small linear solves.
//!
//! Everything is implemented from scratch on `std` + `rand`; the offline
//! dependency set has no complex-number or linear-algebra crates, and the
//! matrices in circuit cutting are small enough (`2^n` for n ≤ ~12) that a
//! simple dense row-major representation is the right engineering choice.
//!
//! ## Quick tour
//!
//! ```
//! use qcut_math::{c64, Complex, Matrix, Pauli};
//!
//! // ρ = ½ Σ_M tr(Mρ) M — the Pauli expansion behind wire cutting.
//! let rho = Matrix::two_by_two(c64(0.75, 0.0), c64(0.1, 0.1),
//!                              c64(0.1, -0.1), c64(0.25, 0.0));
//! let mut sum = Matrix::zeros(2, 2);
//! for p in Pauli::ALL {
//!     let coeff = p.matrix().trace_product(&rho);
//!     sum = &sum + &p.matrix().scale(coeff * 0.5);
//! }
//! assert!(sum.approx_eq(&rho, 1e-12));
//! ```

#![forbid(unsafe_code)]

pub mod approx;
pub mod complex;
pub mod matrix;
pub mod pauli;
pub mod qr;
pub mod random;
pub mod solve;
pub mod states;

pub use approx::{approx_eq, approx_eq_rel, TOL_ACCUM, TOL_GOLDEN, TOL_STRICT};
pub use complex::{c64, Complex};
pub use matrix::Matrix;
pub use pauli::{Pauli, PauliString};
pub use qr::{qr_decompose, qr_haar_fixed, QrDecomposition};
pub use random::{ginibre, haar_unitary, random_orthogonal, random_state};
pub use solve::{invert, solve_complex, solve_real, SingularMatrix};
pub use states::{pure_density, PrepState, SicState};
