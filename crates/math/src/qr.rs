//! Householder QR decomposition for complex matrices.
//!
//! Needed to draw Haar-random unitaries (QR of a Ginibre matrix with the
//! phase-fixing of Mezzadri 2006) for the paper's `random_circuit()`-style
//! workloads, and as a general orthonormalisation utility.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Result of a QR decomposition: `A = Q R` with `Q` unitary (square) and `R`
/// upper-triangular.
pub struct QrDecomposition {
    /// Unitary factor, `m × m`.
    pub q: Matrix,
    /// Upper-triangular factor, `m × n`.
    pub r: Matrix,
}

/// Computes the QR decomposition of `a` via Householder reflections.
///
/// Works for any `m × n` with `m >= n`. Numerically stable for the small
/// matrices (`n <= 64`) this workspace uses.
pub fn qr_decompose(a: &Matrix) -> QrDecomposition {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "qr_decompose requires rows >= cols");
    let mut r = a.clone();
    let mut q = Matrix::identity(m);

    for k in 0..n.min(m.saturating_sub(1)) {
        // Build the Householder vector for column k below the diagonal.
        let mut norm_sq = 0.0;
        for i in k..m {
            norm_sq += r[(i, k)].norm_sqr();
        }
        let norm = norm_sq.sqrt();
        if norm < 1e-300 {
            continue; // Column already zero below the diagonal.
        }
        let x0 = r[(k, k)];
        // alpha = -e^{i arg(x0)} * norm ensures the reflected pivot has the
        // phase of x0, avoiding catastrophic cancellation.
        let phase = if x0.abs() < 1e-300 {
            Complex::ONE
        } else {
            x0 * (1.0 / x0.abs())
        };
        let alpha = -phase * norm;

        // v = x - alpha * e1 (only rows k..m are nonzero).
        let mut v = vec![Complex::ZERO; m - k];
        v[0] = x0 - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let v_norm_sq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if v_norm_sq < 1e-300 {
            continue;
        }
        let beta = 2.0 / v_norm_sq;

        // R <- (I - beta v v†) R on rows k..m.
        for j in k..n {
            let mut dot = Complex::ZERO;
            for i in k..m {
                dot = dot.mul_add(v[i - k].conj(), r[(i, j)]);
            }
            let f = dot * beta;
            for i in k..m {
                let upd = v[i - k] * f;
                r[(i, j)] -= upd;
            }
        }
        // Q <- Q (I - beta v v†) on columns k..m.
        for i in 0..m {
            let mut dot = Complex::ZERO;
            for j in k..m {
                dot = dot.mul_add(q[(i, j)], v[j - k]);
            }
            let f = dot * beta;
            for j in k..m {
                let upd = f * v[j - k].conj();
                q[(i, j)] -= upd;
            }
        }
    }

    // Zero the strictly-lower triangle of R explicitly (it holds round-off).
    for i in 0..m {
        for j in 0..n.min(i) {
            r[(i, j)] = Complex::ZERO;
        }
    }

    QrDecomposition { q, r }
}

/// QR with the Mezzadri phase fix: rescales columns of `Q` so the diagonal
/// of `R` is real-positive. Feeding a Ginibre matrix through this yields a
/// Haar-distributed unitary.
pub fn qr_haar_fixed(a: &Matrix) -> Matrix {
    let QrDecomposition { mut q, r } = qr_decompose(a);
    let n = a.cols();
    for j in 0..n {
        let d = r[(j, j)];
        let mag = d.abs();
        let phase = if mag < 1e-300 {
            Complex::ONE
        } else {
            d * (1.0 / mag)
        };
        // Multiply column j of Q by phase (so Q' R' = A with R' diag real>0).
        for i in 0..q.rows() {
            q[(i, j)] *= phase;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, rng: &mut StdRng) -> Matrix {
        let data = (0..n * n)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        Matrix::from_rows(n, n, data)
    }

    #[test]
    fn qr_reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 4, 8] {
            let a = random_matrix(n, &mut rng);
            let QrDecomposition { q, r } = qr_decompose(&a);
            assert!(q.matmul(&r).approx_eq(&a, 1e-9), "QR != A for n={n}");
        }
    }

    #[test]
    fn q_is_unitary() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 4, 8, 16] {
            let a = random_matrix(n, &mut rng);
            let QrDecomposition { q, .. } = qr_decompose(&a);
            assert!(q.is_unitary(1e-9), "Q not unitary for n={n}");
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(6, &mut rng);
        let QrDecomposition { r, .. } = qr_decompose(&a);
        for i in 0..6 {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12, "R[{i},{j}] nonzero");
            }
        }
    }

    #[test]
    fn haar_fixed_q_is_unitary_and_reconstructs_up_to_phase() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_matrix(4, &mut rng);
        let q = qr_haar_fixed(&a);
        assert!(q.is_unitary(1e-9));
    }

    #[test]
    fn identity_decomposes_trivially() {
        let i4 = Matrix::identity(4);
        let QrDecomposition { q, r } = qr_decompose(&i4);
        assert!(q.matmul(&r).approx_eq(&i4, 1e-12));
        assert!(q.is_unitary(1e-12));
    }

    #[test]
    fn tall_matrix_qr() {
        let mut rng = StdRng::seed_from_u64(19);
        let data = (0..6 * 2)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let a = Matrix::from_rows(6, 2, data);
        let QrDecomposition { q, r } = qr_decompose(&a);
        assert!(q.is_unitary(1e-9));
        assert!(q.matmul(&r).approx_eq(&a, 1e-9));
    }
}
