//! Random matrices and states: Ginibre ensembles, Haar-random unitaries,
//! random real-orthogonal matrices, and random pure states.
//!
//! The paper's workloads are built from Qiskit's `random_circuit()`; our
//! circuit generator (in `qcut-circuit`) composes gates, but several tests
//! and the `Unitary` gate paths also need raw Haar-random matrices.

use crate::complex::{c64, Complex};
use crate::matrix::Matrix;
use crate::qr::qr_haar_fixed;
use rand::Rng;

/// Samples one standard complex Gaussian (unit-variance Ginibre entry) using
/// the Box–Muller transform.
#[inline]
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R) -> Complex {
    // Two independent N(0, 1/2) components give a unit-variance complex
    // Gaussian; the exact scale is irrelevant for QR-based Haar sampling.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = (-2.0 * u1.ln()).sqrt();
    c64(r * u2.cos(), r * u2.sin()) * std::f64::consts::FRAC_1_SQRT_2
}

/// Samples one standard real Gaussian.
#[inline]
pub fn real_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

/// An `n × n` matrix of i.i.d. complex Gaussians (Ginibre ensemble).
pub fn ginibre<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    let data = (0..n * n).map(|_| complex_gaussian(rng)).collect();
    Matrix::from_rows(n, n, data)
}

/// A Haar-distributed `n × n` unitary (QR of a Ginibre matrix with the
/// Mezzadri phase fix).
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    qr_haar_fixed(&ginibre(n, rng))
}

/// A random real orthogonal `n × n` matrix (QR of a real Gaussian matrix).
///
/// Used to build *real-amplitude* upstream unitaries — the mechanism that
/// makes the Y basis negligible at the paper's golden cutting point
/// (`tr((Π_b ⊗ Y) ρ) = 0` for any real state).
pub fn random_orthogonal<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    let data: Vec<Complex> = (0..n * n).map(|_| c64(real_gaussian(rng), 0.0)).collect();
    let q = qr_haar_fixed(&Matrix::from_rows(n, n, data));
    // The phase fix on a real matrix yields a real orthogonal Q (phases are
    // ±1); strip any residual imaginary round-off.
    let cleaned = q
        .as_slice()
        .iter()
        .map(|z| c64(z.re, 0.0))
        .collect::<Vec<_>>();
    Matrix::from_rows(n, n, cleaned)
}

/// A Haar-random pure state on `n` qubits as a `2^n` amplitude vector.
pub fn random_state<R: Rng + ?Sized>(num_qubits: usize, rng: &mut R) -> Vec<Complex> {
    let dim = 1usize << num_qubits;
    let mut v: Vec<Complex> = (0..dim).map(|_| complex_gaussian(rng)).collect();
    let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    for z in &mut v {
        *z *= 1.0 / norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 4, 8] {
            let u = haar_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-9), "n={n}");
        }
    }

    #[test]
    fn haar_unitary_is_seed_deterministic() {
        let a = haar_unitary(4, &mut StdRng::seed_from_u64(42));
        let b = haar_unitary(4, &mut StdRng::seed_from_u64(42));
        assert!(a.approx_eq(&b, 0.0));
        let c = haar_unitary(4, &mut StdRng::seed_from_u64(43));
        assert!(a.max_abs_diff(&c) > 1e-6, "different seeds should differ");
    }

    #[test]
    fn random_orthogonal_is_real_and_orthogonal() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2usize, 4, 8] {
            let q = random_orthogonal(n, &mut rng);
            assert!(q.is_real(0.0), "orthogonal matrix has imaginary parts");
            assert!(q.is_unitary(1e-9), "n={n}");
        }
    }

    #[test]
    fn random_state_is_normalised() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in 1..=6usize {
            let v = random_state(n, &mut rng);
            assert_eq!(v.len(), 1 << n);
            let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        // Sanity: mean ~ 0, variance ~ 1 over many draws (loose bounds, the
        // point is catching sign/scale bugs, not distribution testing).
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| real_gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn complex_gaussian_has_unit_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let var = (0..n)
            .map(|_| complex_gaussian(&mut rng).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((var - 1.0).abs() < 0.1, "E|z|^2 = {var}");
    }

    #[test]
    fn haar_first_moment_vanishes() {
        // E[U] = 0 for Haar; averaging entries over draws should shrink.
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 200;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..trials {
            acc = &acc + &haar_unitary(2, &mut rng);
        }
        let avg_mag = acc.frobenius_norm() / trials as f64;
        assert!(avg_mag < 0.1, "average magnitude {avg_mag}");
    }
}
