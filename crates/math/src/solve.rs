//! Small dense linear solves (Gaussian elimination with partial pivoting).
//!
//! The SIC-basis reconstruction path (paper §II-B: "employing the SICC basis
//! would require more involved implementation, namely, solving linear
//! systems") converts measured SIC-preparation coefficients into Pauli
//! coefficients by inverting a fixed 4×4 frame matrix. A generic solver is
//! provided for both real and complex systems.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Error raised when a linear system is (numerically) singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves the complex system `A x = b` in place of a copy; returns `x`.
///
/// `A` must be square with `A.rows() == b.len()`. Uses partial pivoting;
/// fine for the `n <= 16` systems this workspace needs.
pub fn solve_complex(a: &Matrix, b: &[Complex]) -> Result<Vec<Complex>, SingularMatrix> {
    assert!(a.is_square(), "solve requires a square matrix");
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");

    // Augmented working copy.
    let mut m = a.clone();
    let mut x: Vec<Complex> = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the largest |entry| in this column.
        let mut pivot_row = col;
        let mut pivot_mag = m[(col, col)].abs();
        for row in (col + 1)..n {
            let mag = m[(row, col)].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = row;
            }
        }
        if pivot_mag < 1e-12 {
            return Err(SingularMatrix);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        let inv_pivot = m[(col, col)].inv();
        for row in (col + 1)..n {
            let factor = m[(row, col)] * inv_pivot;
            if factor == Complex::ZERO {
                continue;
            }
            for j in col..n {
                let upd = factor * m[(col, j)];
                m[(row, j)] -= upd;
            }
            let upd = factor * x[col];
            x[row] -= upd;
        }
    }

    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for j in (col + 1)..n {
            acc -= m[(col, j)] * x[j];
        }
        x[col] = acc * m[(col, col)].inv();
    }
    Ok(x)
}

/// Solves a real system `A x = b` where `A` is given row-major.
pub fn solve_real(a: &[f64], n: usize, b: &[f64]) -> Result<Vec<f64>, SingularMatrix> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let cm = Matrix::from_real(n, n, a);
    let cb: Vec<Complex> = b.iter().map(|&v| Complex::from_re(v)).collect();
    let x = solve_complex(&cm, &cb)?;
    Ok(x.into_iter().map(|z| z.re).collect())
}

/// Inverts a square complex matrix by solving against the identity columns.
pub fn invert(a: &Matrix) -> Result<Matrix, SingularMatrix> {
    assert!(a.is_square(), "invert requires a square matrix");
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![Complex::ZERO; n];
        e[j] = Complex::ONE;
        let col = solve_complex(a, &e)?;
        for i in 0..n {
            out[(i, j)] = col[i];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_known_real_system() {
        // 2x + y = 5; x - y = 1 => x = 2, y = 1
        let x = solve_real(&[2.0, 1.0, 1.0, -1.0], 2, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_then_multiply_round_trips() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [2usize, 4, 8] {
            let data = (0..n * n)
                .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let a = Matrix::from_rows(n, n, data);
            let b: Vec<Complex> = (0..n)
                .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let x = solve_complex(&a, &b).unwrap();
            let got = a.matvec(&x);
            for i in 0..n {
                assert!(got[i].approx_eq(b[i], 1e-9), "n={n} row {i}");
            }
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        let b = [Complex::ONE, Complex::ONE];
        assert_eq!(solve_complex(&a, &b), Err(SingularMatrix));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero forces a row swap.
        let a = Matrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = solve_complex(&a, &[c64(3.0, 0.0), c64(7.0, 0.0)]).unwrap();
        assert!(x[0].approx_eq(c64(7.0, 0.0), 1e-12));
        assert!(x[1].approx_eq(c64(3.0, 0.0), 1e-12));
    }

    #[test]
    fn invert_gives_two_sided_inverse() {
        let mut rng = StdRng::seed_from_u64(29);
        let data = (0..16)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let a = Matrix::from_rows(4, 4, data);
        let inv = invert(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(4), 1e-9));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(4), 1e-9));
    }
}
