//! Tolerance constants and floating-point comparison helpers shared by the
//! workspace's numerical code and tests.

/// Default absolute tolerance for exact-arithmetic identities checked in
/// floating point (unitarity, trace preservation, ...).
pub const TOL_STRICT: f64 = 1e-10;

/// Tolerance for quantities that accumulate round-off across a simulation
/// (multi-gate state evolution, reconstruction sums).
pub const TOL_ACCUM: f64 = 1e-7;

/// Tolerance for deciding that a measured/simulated coefficient is "zero"
/// when detecting golden cutting points exactly (paper Eq. 15).
pub const TOL_GOLDEN: f64 = 1e-9;

/// Absolute approximate equality.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Relative-or-absolute approximate equality: passes when the difference is
/// within `tol` absolutely or within `tol * max(|a|, |b|)` relatively.
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// Asserts two slices are element-wise approximately equal.
///
/// # Panics
/// Panics with a descriptive message on the first mismatch.
pub fn assert_slices_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            approx_eq(*x, *y, tol),
            "slices differ at index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_comparison() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
    }

    #[test]
    fn relative_comparison_scales() {
        assert!(approx_eq_rel(1e9, 1e9 + 10.0, 1e-6));
        assert!(!approx_eq_rel(1.0, 2.0, 1e-6));
        assert!(approx_eq_rel(0.0, 1e-12, 1e-10));
    }

    #[test]
    fn slice_assertion_passes_on_close_slices() {
        assert_slices_close(&[1.0, 2.0], &[1.0 + 1e-12, 2.0 - 1e-12], 1e-10);
    }

    #[test]
    #[should_panic(expected = "slices differ at index 1")]
    fn slice_assertion_panics_with_index() {
        assert_slices_close(&[1.0, 2.0], &[1.0, 3.0], 1e-10);
    }
}
