//! Named single-qubit states used by the cutting protocol.
//!
//! The downstream fragment of a cut is re-initialised into Pauli eigenstates
//! (`|0>, |1>, |+>, |->, |+i>, |-i>` — the overcomplete set giving `O(6^K)`
//! circuit evaluations) or, in the SIC variant discussed in §II-B of the
//! paper, into the four tetrahedral SIC states giving `O(4^K)`.

use crate::complex::{c64, Complex};
use crate::matrix::Matrix;
use crate::pauli::Pauli;
use std::fmt;

/// The six Pauli eigenstates used for downstream state preparation.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum PrepState {
    /// `|0>` — Z eigenstate, eigenvalue +1.
    Zp,
    /// `|1>` — Z eigenstate, eigenvalue −1.
    Zm,
    /// `|+>` — X eigenstate, eigenvalue +1.
    Xp,
    /// `|->` — X eigenstate, eigenvalue −1.
    Xm,
    /// `|+i>` — Y eigenstate, eigenvalue +1.
    Yp,
    /// `|-i>` — Y eigenstate, eigenvalue −1.
    Ym,
}

impl PrepState {
    /// All six preparation states (the standard scheme).
    pub const ALL: [PrepState; 6] = [
        PrepState::Zp,
        PrepState::Zm,
        PrepState::Xp,
        PrepState::Xm,
        PrepState::Yp,
        PrepState::Ym,
    ];

    /// The four preparation states that remain when the `Y` basis is
    /// neglected at a golden cutting point.
    pub const WITHOUT_Y: [PrepState; 4] =
        [PrepState::Zp, PrepState::Zm, PrepState::Xp, PrepState::Xm];

    /// The Pauli whose eigenstate this is.
    pub fn pauli(self) -> Pauli {
        match self {
            PrepState::Zp | PrepState::Zm => Pauli::Z,
            PrepState::Xp | PrepState::Xm => Pauli::X,
            PrepState::Yp | PrepState::Ym => Pauli::Y,
        }
    }

    /// The eigenvalue (`+1` or `-1`) of [`PrepState::pauli`] on this state.
    pub fn eigenvalue(self) -> f64 {
        match self {
            PrepState::Zp | PrepState::Xp | PrepState::Yp => 1.0,
            _ => -1.0,
        }
    }

    /// Eigenstate index (0 for `+`, 1 for `−`) matching
    /// [`Pauli::eigenstate`].
    pub fn eigenindex(self) -> usize {
        if self.eigenvalue() > 0.0 {
            0
        } else {
            1
        }
    }

    /// The eigenstates of a given Pauli, `(plus, minus)`.
    pub fn of_pauli(p: Pauli) -> (PrepState, PrepState) {
        match p {
            // The identity shares the Z eigenbasis; both carry weight +1 in
            // the reconstruction but the *states* are |0>, |1>.
            Pauli::I | Pauli::Z => (PrepState::Zp, PrepState::Zm),
            Pauli::X => (PrepState::Xp, PrepState::Xm),
            Pauli::Y => (PrepState::Yp, PrepState::Ym),
        }
    }

    /// State vector as a 2-array.
    pub fn ket(self) -> [Complex; 2] {
        self.pauli().eigenstate(self.eigenindex())
    }

    /// Density matrix `|v><v|`.
    pub fn density(self) -> Matrix {
        self.pauli().eigenprojector(self.eigenindex())
    }

    /// Bloch vector `(x, y, z)` of the state.
    pub fn bloch(self) -> [f64; 3] {
        match self {
            PrepState::Zp => [0.0, 0.0, 1.0],
            PrepState::Zm => [0.0, 0.0, -1.0],
            PrepState::Xp => [1.0, 0.0, 0.0],
            PrepState::Xm => [-1.0, 0.0, 0.0],
            PrepState::Yp => [0.0, 1.0, 0.0],
            PrepState::Ym => [0.0, -1.0, 0.0],
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PrepState::Zp => "|0>",
            PrepState::Zm => "|1>",
            PrepState::Xp => "|+>",
            PrepState::Xm => "|->",
            PrepState::Yp => "|+i>",
            PrepState::Ym => "|-i>",
        }
    }
}

impl fmt::Display for PrepState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The four symmetric informationally-complete (SIC) states — vertices of a
/// regular tetrahedron on the Bloch sphere. Used by the `O(4^K)` preparation
/// scheme the paper contrasts against (§II-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum SicState {
    /// `|0>` (north pole).
    S0,
    /// Bloch vector `(2√2/3, 0, −1/3)`.
    S1,
    /// Bloch vector `(−√2/3, √(2/3), −1/3)`.
    S2,
    /// Bloch vector `(−√2/3, −√(2/3), −1/3)`.
    S3,
}

impl SicState {
    /// All four SIC states.
    pub const ALL: [SicState; 4] = [SicState::S0, SicState::S1, SicState::S2, SicState::S3];

    /// Bloch vector of the state.
    pub fn bloch(self) -> [f64; 3] {
        let a = 2.0 * std::f64::consts::SQRT_2 / 3.0;
        let b = std::f64::consts::SQRT_2 / 3.0;
        let c = (2.0f64 / 3.0).sqrt();
        match self {
            SicState::S0 => [0.0, 0.0, 1.0],
            SicState::S1 => [a, 0.0, -1.0 / 3.0],
            SicState::S2 => [-b, c, -1.0 / 3.0],
            SicState::S3 => [-b, -c, -1.0 / 3.0],
        }
    }

    /// State vector. Built from the Bloch angles
    /// `|ψ> = cos(θ/2)|0> + e^{iφ} sin(θ/2)|1>`.
    pub fn ket(self) -> [Complex; 2] {
        let [x, y, z] = self.bloch();
        let theta = z.clamp(-1.0, 1.0).acos();
        let phi = y.atan2(x);
        [
            c64((theta / 2.0).cos(), 0.0),
            Complex::from_polar((theta / 2.0).sin(), phi),
        ]
    }

    /// Density matrix `½ (I + x·X + y·Y + z·Z)`.
    pub fn density(self) -> Matrix {
        let [x, y, z] = self.bloch();
        let mut m = Matrix::identity(2);
        m = &m + &Pauli::X.matrix().scale(c64(x, 0.0));
        m = &m + &Pauli::Y.matrix().scale(c64(y, 0.0));
        m = &m + &Pauli::Z.matrix().scale(c64(z, 0.0));
        m.scale(c64(0.5, 0.0))
    }
}

/// Density matrix from a pure state vector: `|v><v|`.
pub fn pure_density(v: &[Complex]) -> Matrix {
    let n = v.len();
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = v[i] * v[j].conj();
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn prep_states_are_normalised() {
        for s in PrepState::ALL {
            let k = s.ket();
            let n: f64 = k.iter().map(|z| z.norm_sqr()).sum();
            assert!((n - 1.0).abs() < TOL, "{s} not normalised");
        }
    }

    #[test]
    fn prep_state_is_eigenstate_of_its_pauli() {
        for s in PrepState::ALL {
            let m = s.pauli().matrix();
            let k = s.ket();
            let got = m.matvec(&k);
            for i in 0..2 {
                assert!(
                    got[i].approx_eq(k[i] * s.eigenvalue(), TOL),
                    "{s} is not an eigenstate"
                );
            }
        }
    }

    #[test]
    fn prep_density_matches_bloch_vector() {
        for s in PrepState::ALL {
            let rho = s.density();
            let [x, y, z] = s.bloch();
            let got_x = Pauli::X.matrix().trace_product(&rho).re;
            let got_y = Pauli::Y.matrix().trace_product(&rho).re;
            let got_z = Pauli::Z.matrix().trace_product(&rho).re;
            assert!((got_x - x).abs() < TOL, "{s} x");
            assert!((got_y - y).abs() < TOL, "{s} y");
            assert!((got_z - z).abs() < TOL, "{s} z");
        }
    }

    #[test]
    fn of_pauli_returns_signed_pair() {
        for p in Pauli::ALL {
            let (plus, minus) = PrepState::of_pauli(p);
            if p == Pauli::I {
                // Identity: both eigenvalues +1, states |0>, |1>.
                assert_eq!(plus, PrepState::Zp);
                assert_eq!(minus, PrepState::Zm);
            } else {
                assert_eq!(plus.pauli(), p);
                assert_eq!(minus.pauli(), p);
                assert_eq!(plus.eigenvalue(), 1.0);
                assert_eq!(minus.eigenvalue(), -1.0);
            }
        }
    }

    #[test]
    fn eigenstate_pair_resolves_identity() {
        // Σ_s |s><s| = I for each basis — the completeness used when the
        // upstream discards a qubit.
        for p in Pauli::NONTRIVIAL {
            let (a, b) = PrepState::of_pauli(p);
            let sum = &a.density() + &b.density();
            assert!(sum.approx_eq(&Matrix::identity(2), TOL));
        }
    }

    #[test]
    fn sic_states_are_normalised_and_pure() {
        for s in SicState::ALL {
            let k = s.ket();
            let n: f64 = k.iter().map(|z| z.norm_sqr()).sum();
            assert!((n - 1.0).abs() < TOL);
            let rho = s.density();
            let rho2 = rho.matmul(&rho);
            assert!(rho2.approx_eq(&rho, 1e-10), "SIC state not pure");
            assert!(
                rho.approx_eq(&pure_density(&k), 1e-10),
                "ket/density mismatch"
            );
        }
    }

    #[test]
    fn sic_pairwise_overlap_is_one_third() {
        // |<ψ_i|ψ_j>|² = 1/3 for i ≠ j — the defining SIC property.
        for (i, a) in SicState::ALL.iter().enumerate() {
            for (j, b) in SicState::ALL.iter().enumerate() {
                let ka = a.ket();
                let kb = b.ket();
                let ip = ka[0].conj() * kb[0] + ka[1].conj() * kb[1];
                let want = if i == j { 1.0 } else { 1.0 / 3.0 };
                assert!(
                    (ip.norm_sqr() - want).abs() < 1e-10,
                    "overlap {i},{j} = {}",
                    ip.norm_sqr()
                );
            }
        }
    }

    #[test]
    fn sic_states_resolve_identity() {
        // ½ Σ_i |ψ_i><ψ_i| = I — informational completeness.
        let mut sum = Matrix::zeros(2, 2);
        for s in SicState::ALL {
            sum = &sum + &s.density();
        }
        assert!(sum
            .scale(c64(0.5, 0.0))
            .approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pure_density_has_unit_trace_and_rank_one() {
        let v = [c64(0.6, 0.0), c64(0.0, 0.8)];
        let rho = pure_density(&v);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!(rho.matmul(&rho).approx_eq(&rho, 1e-10));
    }
}
