//! Dense complex matrices in row-major order.
//!
//! Circuit-cutting workloads only need small dense matrices (gate matrices
//! are 2×2 or 4×4; fragment density matrices top out at `2^n × 2^n` for
//! n ≤ ~12), so a straightforward row-major `Vec<Complex>` with cache-friendly
//! `ikj`-ordered multiplication is the right tool — no sparse or blocked
//! machinery.

use crate::complex::{c64, Complex};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix (row-major storage).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from real row-major entries.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        Self::from_rows(rows, cols, data.iter().map(|&x| c64(x, 0.0)).collect())
    }

    /// Convenience constructor for a 2×2 matrix.
    pub fn two_by_two(a: Complex, b: Complex, c: Complex, d: Complex) -> Self {
        Self::from_rows(2, 2, vec![a, b, c, d])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Returns one row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Conjugate transpose (Hermitian adjoint), `A†`.
    pub fn adjoint(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix trace.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix product `self * rhs` with cache-friendly `ikj` loop order.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o = o.mul_add(a, r);
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "matvec length mismatch");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(Complex::ZERO, |acc, (&a, &x)| acc.mul_add(a, x))
            })
            .collect()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = Matrix::zeros(rows, cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self[(i1, j1)];
                if a == Complex::ZERO {
                    continue;
                }
                for i2 in 0..rhs.rows {
                    for j2 in 0..rhs.cols {
                        out[(i1 * rhs.rows + i2, j1 * rhs.cols + j2)] = a * rhs[(i2, j2)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `sqrt(Σ |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// True when `‖A†A − I‖_max ≤ tol` (the matrix is unitary).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.max_abs_diff(&Matrix::identity(self.rows)) <= tol
    }

    /// True when `‖A − A†‖_max ≤ tol` (the matrix is Hermitian).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&self.adjoint()) <= tol
    }

    /// True when every entry has `|Im| ≤ tol`.
    pub fn is_real(&self, tol: f64) -> bool {
        self.data.iter().all(|z| z.im.abs() <= tol)
    }

    /// Conjugation `U * self * U†` — evolves a density matrix by a unitary.
    pub fn conjugate_by(&self, u: &Matrix) -> Matrix {
        u.matmul(self).matmul(&u.adjoint())
    }

    /// Approximate entry-wise equality.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }

    /// `tr(self * rhs)` without materialising the product. For Hermitian
    /// `self` and density matrix `rhs` this is the expectation value.
    pub fn trace_product(&self, rhs: &Matrix) -> Complex {
        assert_eq!(self.cols, rhs.rows, "trace_product shape mismatch");
        assert_eq!(self.rows, rhs.cols, "trace_product shape mismatch");
        let mut acc = Complex::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc = acc.mul_add(self[(i, k)], rhs[(k, i)]);
            }
        }
        acc
    }

    /// Matrix power by repeated squaring (square matrices only).
    pub fn pow(&self, mut exp: u32) -> Matrix {
        assert!(self.is_square(), "pow of a non-square matrix");
        let mut base = self.clone();
        let mut acc = Matrix::identity(self.rows);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.matmul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.matmul(&base);
            }
        }
        acc
    }

    /// Embeds a 1-qubit gate into an `n`-qubit operator acting on `target`
    /// (qubit 0 is the least-significant bit of the basis index).
    pub fn embed_one_qubit(gate: &Matrix, n: usize, target: usize) -> Matrix {
        assert_eq!((gate.rows, gate.cols), (2, 2), "expected a 2x2 gate");
        assert!(target < n, "target {target} out of range for {n} qubits");
        let dim = 1usize << n;
        let mut out = Matrix::zeros(dim, dim);
        let bit = 1usize << target;
        for col in 0..dim {
            let cb = usize::from(col & bit != 0);
            for rb in 0..2 {
                let row = (col & !bit) | (rb << target);
                let g = gate[(rb, cb)];
                if g != Complex::ZERO {
                    out[(row, col)] += g;
                }
            }
        }
        out
    }

    /// Embeds a 2-qubit gate into an `n`-qubit operator. The gate matrix is
    /// indexed as `g[(r1*2 + r0, c1*2 + c0)]` where bit 0 refers to `q0` and
    /// bit 1 to `q1`.
    pub fn embed_two_qubit(gate: &Matrix, n: usize, q0: usize, q1: usize) -> Matrix {
        assert_eq!((gate.rows, gate.cols), (4, 4), "expected a 4x4 gate");
        assert!(q0 < n && q1 < n && q0 != q1, "bad qubit pair ({q0},{q1})");
        let dim = 1usize << n;
        let mut out = Matrix::zeros(dim, dim);
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        for col in 0..dim {
            let c0 = usize::from(col & b0 != 0);
            let c1 = usize::from(col & b1 != 0);
            let gcol = c1 * 2 + c0;
            for grow in 0..4 {
                let g = gate[(grow, gcol)];
                if g == Complex::ZERO {
                    continue;
                }
                let r0 = grow & 1;
                let r1 = (grow >> 1) & 1;
                let row = (col & !(b0 | b1)) | (r0 << q0) | (r1 << q1);
                out[(row, col)] += g;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(c64(-1.0, 0.0))
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat2(entries: [f64; 4]) -> Matrix {
        Matrix::from_real(2, 2, &entries)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = mat2([1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert!(a.matmul(&i).approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_known_product() {
        let a = mat2([1.0, 2.0, 3.0, 4.0]);
        let b = mat2([5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&mat2([19.0, 22.0, 43.0, 50.0]), 1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat2([1.0, 2.0, 3.0, 4.0]);
        let v = vec![c64(1.0, 0.0), c64(-1.0, 0.5)];
        let got = a.matvec(&v);
        let as_col = Matrix::from_rows(2, 1, v);
        let want = a.matmul(&as_col);
        assert!(got[0].approx_eq(want[(0, 0)], 1e-12));
        assert!(got[1].approx_eq(want[(1, 0)], 1e-12));
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let m = Matrix::from_rows(
            2,
            2,
            vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, -3.0), c64(4.0, 4.0)],
        );
        let d = m.adjoint();
        assert_eq!(d[(0, 0)], c64(1.0, -1.0));
        assert_eq!(d[(1, 0)], c64(2.0, 0.0));
        assert_eq!(d[(0, 1)], c64(0.0, 3.0));
    }

    #[test]
    fn trace_and_trace_product_agree() {
        let a = mat2([1.0, 2.0, 3.0, 4.0]);
        let b = mat2([0.5, -1.0, 2.0, 0.0]);
        let direct = a.matmul(&b).trace();
        let lazy = a.trace_product(&b);
        assert!(direct.approx_eq(lazy, 1e-12));
    }

    #[test]
    fn kron_shape_and_values() {
        let a = mat2([1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        let k = a.kron(&i);
        assert_eq!((k.rows(), k.cols()), (4, 4));
        assert_eq!(k[(0, 0)], c64(1.0, 0.0));
        assert_eq!(k[(1, 1)], c64(1.0, 0.0));
        assert_eq!(k[(0, 2)], c64(2.0, 0.0));
        assert_eq!(k[(2, 0)], c64(3.0, 0.0));
        assert_eq!(k[(3, 3)], c64(4.0, 0.0));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = mat2([1.0, 2.0, 3.0, 4.0]);
        let b = mat2([0.0, 1.0, 1.0, 0.0]);
        let c = mat2([2.0, 0.0, 0.0, 2.0]);
        let d = mat2([1.0, 1.0, 0.0, 1.0]);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn hermitian_and_unitary_checks() {
        let h = Matrix::from_rows(
            2,
            2,
            vec![c64(1.0, 0.0), c64(0.0, -1.0), c64(0.0, 1.0), c64(2.0, 0.0)],
        );
        assert!(h.is_hermitian(1e-12));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let had = mat2([s, s, s, -s]);
        assert!(had.is_unitary(1e-12));
        assert!(!mat2([1.0, 1.0, 0.0, 1.0]).is_unitary(1e-12));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = mat2([1.0, 1.0, 0.0, 1.0]);
        let a3 = a.matmul(&a).matmul(&a);
        assert!(a.pow(3).approx_eq(&a3, 1e-12));
        assert!(a.pow(0).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn embed_one_qubit_matches_kron() {
        // On 2 qubits with little-endian convention: target 0 => I ⊗ G.
        let g = Matrix::from_rows(
            2,
            2,
            vec![c64(0.1, 0.0), c64(0.2, 0.3), c64(0.4, -0.5), c64(0.6, 0.0)],
        );
        let on_q0 = Matrix::embed_one_qubit(&g, 2, 0);
        let want_q0 = Matrix::identity(2).kron(&g);
        assert!(on_q0.approx_eq(&want_q0, 1e-12));
        let on_q1 = Matrix::embed_one_qubit(&g, 2, 1);
        let want_q1 = g.kron(&Matrix::identity(2));
        assert!(on_q1.approx_eq(&want_q1, 1e-12));
    }

    #[test]
    fn embed_two_qubit_cnot() {
        // CNOT with control=q0, target=q1 in our bit convention:
        // |q1 q0>: 00->00, 01->11, 10->10, 11->01.
        let cnot = Matrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 1.0, 0.0, 0.0,
            ],
        );
        let full = Matrix::embed_two_qubit(&cnot, 2, 0, 1);
        assert!(full.approx_eq(&cnot, 1e-12));
        assert!(full.is_unitary(1e-12));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn conjugate_by_preserves_trace() {
        let rho = mat2([0.7, 0.1, 0.1, 0.3]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let u = mat2([s, s, s, -s]);
        let evolved = rho.conjugate_by(&u);
        assert!(evolved.trace().approx_eq(rho.trace(), 1e-12));
    }
}
