//! Double-precision complex numbers.
//!
//! The offline dependency set has no complex-number crate, so `qcut` carries
//! its own minimal-but-complete implementation. Only the operations the rest
//! of the workspace needs are provided; all of them are `#[inline]` because
//! they sit inside the state-vector hot loops.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex = c64(0.0, 1.0);

    /// Builds a complex number from its real part (imaginary part zero).
    #[inline(always)]
    pub const fn from_re(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Builds `r * e^{iθ}` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`. Cheaper than [`Complex::abs`]; preferred in
    /// probability computations.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns non-finite components when `self` is
    /// zero, mirroring `f64` division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplies by the imaginary unit (`z ↦ iz`) without a full complex
    /// multiply — used by the Pauli-Y kernels.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        c64(-self.im, self.re)
    }

    /// Multiplies by `-i` (`z ↦ -iz`).
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        c64(self.im, -self.re)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// Fused multiply-accumulate: `self + a * b`. The compiler can vectorise
    /// this form better than the operator chain in the matrix kernels.
    #[inline(always)]
    pub fn mul_add(self, a: Complex, b: Complex) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on both components.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, rhs: Complex) -> Complex {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, rhs: Complex) -> Complex {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline(always)]
    fn neg(self) -> Complex {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex::ONE, c64(1.0, 0.0));
        assert_eq!(Complex::I, c64(0.0, 1.0));
        assert_eq!(Complex::from(2.5), c64(2.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(1.25, -0.5);
        assert!((z + Complex::ZERO).approx_eq(z, TOL));
        assert!((z * Complex::ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(Complex::ZERO, TOL));
        assert!((z * z.inv()).approx_eq(Complex::ONE, TOL));
        assert!((z / z).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn mul_i_shortcuts_match_full_multiply() {
        let z = c64(0.3, -1.7);
        assert!(z.mul_i().approx_eq(z * Complex::I, TOL));
        assert!(z.mul_neg_i().approx_eq(z * c64(0.0, -1.0), TOL));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < TOL);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < TOL);
    }

    #[test]
    fn exponential_of_i_pi_is_minus_one() {
        let z = c64(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(2.0, 3.0), c64(-1.0, 0.5), c64(0.0, -4.0)] {
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-10), "sqrt failed for {z}");
        }
    }

    #[test]
    fn mul_add_matches_operators() {
        let a = c64(0.2, 0.9);
        let b = c64(-1.1, 0.4);
        let acc = c64(5.0, -2.0);
        assert!(acc.mul_add(a, b).approx_eq(acc + a * b, TOL));
    }

    #[test]
    fn sum_over_iterator() {
        let zs = vec![c64(1.0, 1.0), c64(2.0, -3.0), c64(-0.5, 0.5)];
        let s: Complex = zs.iter().sum();
        assert!(s.approx_eq(c64(2.5, -1.5), TOL));
        let s2: Complex = zs.into_iter().sum();
        assert!(s2.approx_eq(c64(2.5, -1.5), TOL));
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1.000000-2.000000i");
    }

    #[test]
    fn assign_operators() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        assert_eq!(z, c64(2.0, 1.0));
        z -= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= c64(0.0, 1.0);
        assert_eq!(z, c64(0.0, 2.0));
        z *= 2.0;
        assert_eq!(z, c64(0.0, 4.0));
        z /= c64(0.0, 4.0);
        assert!(z.approx_eq(Complex::ONE, TOL));
    }
}
