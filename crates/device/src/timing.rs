//! Device timing model.
//!
//! The paper's Fig. 5 reports *wall time* on IBM hardware: 18.84 s for the
//! standard method vs 12.61 s with the golden cutting point — a ratio set
//! almost entirely by the number of subcircuit jobs (9 vs 6 per trial),
//! because per-job overhead (compilation, queueing slot, control-electronics
//! arming) dominates the actual shot time on small circuits. The timing
//! model captures exactly those ingredients so the simulated durations
//! reproduce the figure's *shape* without pretending to model IBM's cloud.
//!
//! All times in **seconds**.

use qcut_circuit::circuit::Circuit;
use std::time::Duration;

/// Per-operation durations of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Duration of a 1-qubit gate (s).
    pub gate_1q: f64,
    /// Duration of a 2-qubit gate (s).
    pub gate_2q: f64,
    /// Readout duration per shot (s).
    pub readout: f64,
    /// Qubit reset / repetition delay per shot (s). IBM defaults are in the
    /// hundreds of microseconds, which makes this the dominant per-shot
    /// term.
    pub rep_delay: f64,
    /// Fixed overhead per submitted job: compile, load, arm (s). Dominant
    /// for the small circuits of the paper.
    pub job_overhead: f64,
}

impl TimingModel {
    /// An idealised, effectively instantaneous model (for the Aer-like
    /// backend: only a token per-job cost so comparisons remain meaningful).
    pub fn instantaneous() -> Self {
        TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 0.0,
        }
    }

    /// IBM-superconducting-like parameters: Falcon-class microsecond-scale
    /// pulses, the default 250 μs repetition delay, and 1.85 s of per-job
    /// overhead. With 1000 shots/job the total is ≈ 2.1 s/job, matching the
    /// paper's Fig. 5 (18.84 s / 9 jobs, 12.61 s / 6 jobs).
    pub fn ibm_like() -> Self {
        TimingModel {
            gate_1q: 35e-9,
            gate_2q: 300e-9,
            readout: 5e-6,
            rep_delay: 250e-6,
            job_overhead: 1.85,
        }
    }

    /// Critical-path circuit duration: per-qubit clocks advance by the gate
    /// duration; 2-qubit gates synchronise their operands.
    pub fn circuit_duration(&self, circuit: &Circuit) -> f64 {
        let mut clock = vec![0.0f64; circuit.num_qubits()];
        for inst in circuit.instructions() {
            let dur = if inst.qubits.len() == 2 {
                self.gate_2q
            } else {
                self.gate_1q
            };
            let start = inst.qubits.iter().map(|&q| clock[q]).fold(0.0f64, f64::max);
            for &q in &inst.qubits {
                clock[q] = start + dur;
            }
        }
        clock.into_iter().fold(0.0, f64::max)
    }

    /// Total simulated duration of one job: overhead plus per-shot
    /// (circuit + readout + reset) time.
    pub fn job_duration(&self, circuit: &Circuit, shots: u64) -> f64 {
        self.job_overhead
            + shots as f64 * (self.circuit_duration(circuit) + self.readout + self.rep_delay)
    }

    /// [`TimingModel::job_duration`] as a [`Duration`].
    pub fn job_duration_as_duration(&self, circuit: &Circuit, shots: u64) -> Duration {
        Duration::from_secs_f64(self.job_duration(circuit, shots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::circuit::Circuit;

    #[test]
    fn critical_path_not_gate_sum() {
        let mut c = Circuit::new(2);
        c.h(0).h(1); // parallel: one 1q duration
        let t = TimingModel {
            gate_1q: 1.0,
            gate_2q: 10.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 0.0,
        };
        assert!((t.circuit_duration(&c) - 1.0).abs() < 1e-12);
        c.cx(0, 1); // chained after both
        assert!((t.circuit_duration(&c) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_gate_synchronises_operands() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1).h(1);
        let t = TimingModel {
            gate_1q: 1.0,
            gate_2q: 2.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 0.0,
        };
        // q0: 2×1q = 2, cx starts at 2 ends at 4, h(1) ends at 5.
        assert!((t.circuit_duration(&c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn job_duration_scales_with_shots() {
        let mut c = Circuit::new(1);
        c.h(0);
        let t = TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 1e-3,
            rep_delay: 1e-3,
            job_overhead: 1.0,
        };
        let d1000 = t.job_duration(&c, 1000);
        assert!((d1000 - (1.0 + 1000.0 * 2e-3)).abs() < 1e-9);
        let d2000 = t.job_duration(&c, 2000);
        assert!(d2000 > d1000);
    }

    #[test]
    fn ibm_like_overhead_dominates_small_jobs() {
        // The regime behind Fig. 5: 1000 shots of a tiny circuit cost ≈ the
        // job overhead, so wall time ∝ number of jobs.
        let t = TimingModel::ibm_like();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let d = t.job_duration(&c, 1000);
        assert!(d > t.job_overhead && d < t.job_overhead * 1.3, "d = {d}");
    }

    #[test]
    fn instantaneous_model_is_zero_cost() {
        let t = TimingModel::instantaneous();
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_eq!(t.job_duration(&c, 100_000), 0.0);
    }

    #[test]
    fn empty_circuit_duration_is_zero() {
        let t = TimingModel::ibm_like();
        assert_eq!(t.circuit_duration(&Circuit::new(3)), 0.0);
    }
}
