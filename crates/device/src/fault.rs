//! Deterministic fault injection for testing the fault-tolerance stack.
//!
//! [`FaultInjectingBackend`] wraps any [`Backend`] and interposes a *seeded
//! fault schedule* between the caller and the device: fail-the-first-N
//! delivery attempts (globally or per structural hash), probabilistic
//! failure driven by a seeded RNG, injected latency from a [`TimingModel`]
//! (to trip per-job timeouts without a wall clock), and an optional
//! corrupt-counts mode. Every scenario is a pure function of the wrapper's
//! configuration and the sequence of submissions, so the exact same
//! failures replay on every run — which is what lets the retry and
//! degradation tests assert bit-identical recovery.
//!
//! Fault decisions are made **before** the inner backend sees the job: a
//! job scheduled to fail never reaches the wrapped device, so it never
//! advances the inner backend's job counter. When a whole submission fails
//! (e.g. uniform fail-first-N) the retry re-submits the identical batch and
//! the inner backend's per-job seeds are exactly what the fault-free run
//! would have used — recovery is bit-identical, not merely statistically
//! equivalent.

use crate::backend::{
    mix_seed, Backend, BackendError, BatchRun, BatchStats, ExecutionResult, JobResult, JobSpec,
    TransientKind,
};
use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::Counts;
use std::collections::HashMap;
use std::sync::Mutex;

/// A [`Backend`] wrapper with a deterministic, seeded fault schedule.
///
/// ```
/// use qcut_device::fault::FaultInjectingBackend;
/// use qcut_device::ideal::IdealBackend;
/// use qcut_device::backend::{Backend, BackendError};
/// use qcut_circuit::circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let flaky = FaultInjectingBackend::new(IdealBackend::new(7)).fail_first(1);
/// let first = flaky.run(&bell, 100).unwrap_err();
/// assert!(first.is_transient());
/// // The second delivery attempt of the same circuit succeeds.
/// assert_eq!(flaky.run(&bell, 100).unwrap().counts.total(), 100);
/// ```
#[derive(Debug)]
pub struct FaultInjectingBackend<B> {
    inner: B,
    /// Fail the first N delivery attempts of *every* distinct circuit.
    fail_first: u32,
    /// Fail the first N delivery attempts of specific circuits
    /// (structural hash → N); takes precedence over `fail_first`.
    fail_per_circuit: HashMap<u64, u32>,
    /// Probability that any given delivery attempt fails, decided by a
    /// seeded hash of (circuit, attempt) — reproducible across runs.
    fault_probability: f64,
    fault_seed: u64,
    /// Extra simulated device time added to every successful job (and
    /// reported by [`Backend::timing`]), for tripping per-job timeouts.
    latency: Option<TimingModel>,
    /// Deterministically corrupt returned histograms (rotate every
    /// bitstring by +1, preserving totals).
    corrupt: bool,
    /// Report injected faults as [`BackendError::Unavailable`] instead of
    /// [`BackendError::Transient`].
    unavailable: bool,
    kind: TransientKind,
    /// Delivery attempts seen so far, per structural hash. A `Mutex` and
    /// not an atomic map because fault decisions are made sequentially in
    /// submission order (determinism requires it).
    attempts: Mutex<HashMap<u64, u32>>,
}

impl<B: Backend> FaultInjectingBackend<B> {
    /// Wraps `inner` with an empty fault schedule (a transparent proxy).
    pub fn new(inner: B) -> Self {
        FaultInjectingBackend {
            inner,
            fail_first: 0,
            fail_per_circuit: HashMap::new(),
            fault_probability: 0.0,
            fault_seed: 0,
            latency: None,
            corrupt: false,
            unavailable: false,
            kind: TransientKind::Network,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Fails the first `n` delivery attempts of every distinct circuit.
    pub fn fail_first(mut self, n: u32) -> Self {
        self.fail_first = n;
        self
    }

    /// Fails the first `n` delivery attempts of this specific circuit
    /// (matched by structural hash). Overrides [`Self::fail_first`] for
    /// that circuit.
    pub fn fail_circuit(mut self, circuit: &Circuit, n: u32) -> Self {
        self.fail_per_circuit.insert(circuit.structural_hash(), n);
        self
    }

    /// Fails each delivery attempt independently with probability `p`,
    /// decided by a seeded hash of (circuit, attempt number) so the
    /// schedule is identical on every run.
    pub fn with_fault_probability(mut self, p: f64, seed: u64) -> Self {
        self.fault_probability = p.clamp(0.0, 1.0);
        self.fault_seed = seed;
        self
    }

    /// Adds `latency.job_duration` of simulated device time to every
    /// successful job, and reports `latency` as the wrapper's timing model
    /// — the deterministic way to push a job past a per-job timeout.
    pub fn with_latency(mut self, latency: TimingModel) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Deterministically corrupts every returned histogram: each observed
    /// bitstring is rotated by +1 (mod 2^bits). Totals are preserved, so
    /// shot accounting stays intact while the distribution is garbage.
    pub fn corrupt_counts(mut self) -> Self {
        self.corrupt = true;
        self
    }

    /// Reports injected faults as [`BackendError::Unavailable`] instead of
    /// [`BackendError::Transient`].
    pub fn report_unavailable(mut self) -> Self {
        self.unavailable = true;
        self
    }

    /// Sets the [`TransientKind`] carried by injected transient faults.
    pub fn with_kind(mut self, kind: TransientKind) -> Self {
        self.kind = kind;
        self
    }

    /// Shared reference to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Delivery attempts recorded so far for `circuit`.
    pub fn attempts_for(&self, circuit: &Circuit) -> u32 {
        let attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
        attempts
            .get(&circuit.structural_hash())
            .copied()
            .unwrap_or(0)
    }

    fn injects_faults(&self) -> bool {
        self.fail_first > 0 || !self.fail_per_circuit.is_empty() || self.fault_probability > 0.0
    }

    /// Decides the fate of one delivery attempt — called sequentially in
    /// submission order, *before* the inner backend is involved. Returns
    /// the injected error, if any, for this attempt.
    fn decide(&self, circuit: &Circuit) -> Option<BackendError> {
        if !self.injects_faults() {
            return None;
        }
        let hash = circuit.structural_hash();
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let slot = attempts.entry(hash).or_insert(0);
            *slot += 1;
            *slot
        };
        let deadline = self
            .fail_per_circuit
            .get(&hash)
            .copied()
            .unwrap_or(self.fail_first);
        let scheduled = attempt <= deadline;
        let probabilistic = self.fault_probability > 0.0 && {
            // SplitMix64 of (seed, hash ⊕ spread(attempt)) → uniform in
            // [0, 1): a pure function of the configuration and the
            // attempt, never of thread timing.
            let mixed = mix_seed(
                self.fault_seed,
                hash ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let unit = (mixed >> 11) as f64 / (1u64 << 53) as f64;
            unit < self.fault_probability
        };
        if scheduled || probabilistic {
            Some(if self.unavailable {
                BackendError::Unavailable
            } else {
                BackendError::Transient {
                    kind: self.kind,
                    attempt,
                }
            })
        } else {
            None
        }
    }

    /// Applies the latency and corruption transforms to a successful
    /// result.
    fn transform(&self, job: JobSpec<'_>, mut result: ExecutionResult) -> ExecutionResult {
        if let Some(latency) = &self.latency {
            result.simulated_duration += latency.job_duration_as_duration(job.circuit, job.shots);
        }
        if self.corrupt {
            result.counts = rotate_counts(&result.counts);
        }
        result
    }
}

/// Rotates every observed bitstring by +1 (mod 2^bits), preserving the
/// per-entry counts and the total.
fn rotate_counts(counts: &Counts) -> Counts {
    let wrap = 1u64 << counts.num_bits();
    Counts::from_pairs(
        counts.num_bits(),
        counts.iter().map(|(bits, n)| ((bits + 1) % wrap, n)),
    )
}

impl<B: Backend> Backend for FaultInjectingBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_qubits(&self) -> usize {
        self.inner.num_qubits()
    }

    fn timing(&self) -> &TimingModel {
        self.latency.as_ref().unwrap_or_else(|| self.inner.timing())
    }

    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        self.check(circuit, shots)?;
        if let Some(err) = self.decide(circuit) {
            return Err(err);
        }
        let result = self.inner.run(circuit, shots)?;
        Ok(self.transform(JobSpec::new(circuit, shots), result))
    }

    /// Kept in lockstep with [`Backend::run_batch_stats`], like every
    /// workspace backend.
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        self.run_batch_stats(jobs).results
    }

    /// Fault decisions are made sequentially in submission order *before*
    /// the surviving jobs are forwarded to the inner backend as one
    /// (smaller) batch — so a job scheduled to fail never consumes an
    /// inner-backend job seed, and a retried batch that matches the
    /// original submission reproduces the fault-free counts exactly.
    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        let mut slots: Vec<Option<JobResult>> = jobs
            .iter()
            .map(|j| match self.check(j.circuit, j.shots) {
                Err(e) => Some(Err(e)),
                Ok(()) => self.decide(j.circuit).map(Err),
            })
            .collect();
        let survivors: Vec<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
        let forwarded: Vec<JobSpec<'_>> = survivors.iter().map(|&i| jobs[i]).collect();
        let inner_run = if forwarded.is_empty() {
            BatchRun {
                results: Vec::new(),
                stats: BatchStats::default(),
            }
        } else {
            self.inner.run_batch_stats(&forwarded)
        };
        for (&i, result) in survivors.iter().zip(inner_run.results) {
            slots[i] = Some(result.map(|r| self.transform(jobs[i], r)));
        }
        BatchRun {
            results: slots
                .into_iter()
                .map(|r| r.unwrap_or(Err(BackendError::Unavailable)))
                .collect(),
            stats: inner_run.stats,
        }
    }

    /// Corrupted histograms must never pool with clean ones in the warm
    /// cache, so the corrupt flag is folded into the fingerprint; latency
    /// and fault scheduling do not change what a *successful* clean job
    /// measures, so they leave the fingerprint alone.
    fn cache_fingerprint(&self) -> u64 {
        let base = self.inner.cache_fingerprint();
        if self.corrupt {
            base ^ 0x5bd1_e995_7b93_afd7
        } else {
            base
        }
    }

    fn is_fault_prone(&self) -> bool {
        self.injects_faults()
    }

    fn deterministic_seeding(&self) -> bool {
        self.inner.deterministic_seeding()
    }

    /// Fault injection does not change what a successful clean job
    /// measures, so the wrapper inherits the inner backend's score —
    /// except in corrupt-counts mode, where every histogram is garbage and
    /// the member must rank below any honest device a noise-aware
    /// placement could choose instead.
    fn noise_score(&self) -> f64 {
        let base = self.inner.noise_score();
        if self.corrupt {
            base + 1.0
        } else {
            base
        }
    }

    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        self.inner.check(circuit, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealBackend;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    fn ghz() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c
    }

    #[test]
    fn transparent_without_fault_schedule() {
        let plain = IdealBackend::new(9);
        let wrapped = FaultInjectingBackend::new(IdealBackend::new(9));
        let r1 = plain.run(&bell(), 500).unwrap();
        let r2 = wrapped.run(&bell(), 500).unwrap();
        assert_eq!(r1.counts, r2.counts);
        assert!(!wrapped.is_fault_prone());
        assert_eq!(wrapped.cache_fingerprint(), plain.cache_fingerprint());
    }

    #[test]
    fn fail_first_n_then_recover_bit_identically() {
        let plain = IdealBackend::new(3);
        let flaky = FaultInjectingBackend::new(IdealBackend::new(3)).fail_first(2);
        for attempt in 1..=2u32 {
            let err = flaky.run(&bell(), 100).unwrap_err();
            assert_eq!(
                err,
                BackendError::Transient {
                    kind: TransientKind::Network,
                    attempt,
                }
            );
            assert!(err.is_transient());
        }
        // Third attempt reaches the inner backend, whose job counter was
        // never advanced by the failures — same counts as the first
        // fault-free run.
        let recovered = flaky.run(&bell(), 100).unwrap();
        assert_eq!(recovered.counts, plain.run(&bell(), 100).unwrap().counts);
    }

    #[test]
    fn per_circuit_schedule_targets_one_circuit() {
        let bell_c = bell();
        let ghz_c = ghz();
        let flaky = FaultInjectingBackend::new(IdealBackend::new(0)).fail_circuit(&bell_c, 1);
        assert!(flaky.run(&bell_c, 10).is_err());
        assert!(flaky.run(&ghz_c, 10).is_ok());
        assert!(flaky.run(&bell_c, 10).is_ok());
        assert_eq!(flaky.attempts_for(&bell_c), 2);
    }

    #[test]
    fn batch_failures_skip_inner_seeds_for_failed_jobs() {
        // A batch where every job fails must leave the inner counter
        // untouched, so the retried batch is bit-identical to a fault-free
        // submission.
        let bell_c = bell();
        let ghz_c = ghz();
        let jobs = [JobSpec::new(&bell_c, 300), JobSpec::new(&ghz_c, 400)];
        let flaky = FaultInjectingBackend::new(IdealBackend::new(21)).fail_first(1);
        let first = flaky.run_batch_stats(&jobs);
        assert!(first.results.iter().all(|r| r.is_err()));
        assert_eq!(first.stats, BatchStats::default());
        let retry = flaky.run_batch_stats(&jobs);
        let clean = IdealBackend::new(21).run_batch_stats(&jobs);
        for (r, c) in retry.results.iter().zip(&clean.results) {
            assert_eq!(
                r.as_ref().unwrap().counts,
                c.as_ref().unwrap().counts,
                "retried batch must reproduce the fault-free stream"
            );
        }
    }

    #[test]
    fn probabilistic_schedule_is_reproducible() {
        let make =
            || FaultInjectingBackend::new(IdealBackend::new(5)).with_fault_probability(0.5, 1234);
        let observe = |b: &FaultInjectingBackend<IdealBackend>| {
            (0..20)
                .map(|_| b.run(&bell(), 10).is_err())
                .collect::<Vec<_>>()
        };
        let a = observe(&make());
        let b = observe(&make());
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn latency_injection_inflates_simulated_duration() {
        let slow = TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 2.5,
        };
        let b = FaultInjectingBackend::new(IdealBackend::new(0)).with_latency(slow);
        let r = b.run(&bell(), 10).unwrap();
        assert!((r.simulated_duration.as_secs_f64() - 2.5).abs() < 1e-9);
        assert!((b.timing().job_overhead - 2.5).abs() < 1e-12);
    }

    #[test]
    fn corrupt_counts_preserves_totals_but_not_values() {
        let clean = IdealBackend::new(11).run(&bell(), 1000).unwrap();
        let bad = FaultInjectingBackend::new(IdealBackend::new(11))
            .corrupt_counts()
            .run(&bell(), 1000)
            .unwrap();
        assert_eq!(bad.counts.total(), 1000);
        assert_ne!(bad.counts, clean.counts);
        // Bell histogram {00, 11} rotates to {01, 00}.
        assert_eq!(bad.counts.get(0b01), clean.counts.get(0b00));
        assert_eq!(bad.counts.get(0b00), clean.counts.get(0b11));
        // And the fingerprint diverges so the warm cache never pools them.
        let plain = FaultInjectingBackend::new(IdealBackend::new(11));
        let corrupted = FaultInjectingBackend::new(IdealBackend::new(11)).corrupt_counts();
        assert_ne!(plain.cache_fingerprint(), corrupted.cache_fingerprint());
    }

    #[test]
    fn unavailable_mode_changes_the_error_shape() {
        let b = FaultInjectingBackend::new(IdealBackend::new(0))
            .fail_first(1)
            .report_unavailable();
        assert_eq!(b.run(&bell(), 10).unwrap_err(), BackendError::Unavailable);
    }

    #[test]
    fn deterministic_errors_stay_permanent() {
        // Misconfigurations pass through un-retried and do not consume a
        // fault-schedule attempt.
        let b = FaultInjectingBackend::new(IdealBackend::new(0).with_capacity(1)).fail_first(1);
        let err = b.run(&bell(), 10).unwrap_err();
        assert!(matches!(err, BackendError::CircuitTooWide { .. }));
        assert!(!err.is_transient());
        assert_eq!(b.attempts_for(&bell()), 0);
    }
}
