//! Parallel job execution.
//!
//! Circuit cutting's selling point is that fragments "can be simulated
//! independently … run fragments in parallel" (paper §II-A). Two execution
//! strategies are provided:
//!
//! * [`run_parallel`] — rayon fan-out over a job list; the default used by
//!   the cutting pipeline.
//! * [`JobQueue`] — a crossbeam-channel worker pool that models a real
//!   dispatch pipeline (jobs submitted to a device queue, workers drain
//!   it); useful when the number of jobs is large and arrival order
//!   matters for accounting.
//!
//! Both preserve job order in their outputs.

use crate::backend::{Backend, BackendError, ExecutionResult, JobSpec};
use qcut_circuit::circuit::Circuit;
use std::time::Duration;

/// One unit of work: a circuit and its shot budget.
#[derive(Debug, Clone)]
pub struct Job {
    /// Circuit to execute.
    pub circuit: Circuit,
    /// Number of shots.
    pub shots: u64,
    /// Caller-assigned tag, carried through to the result (settings index
    /// in the tomography plan).
    pub tag: usize,
}

/// Result of a batch run, order-aligned with the submitted jobs.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-job results (same order as submission).
    pub results: Vec<Result<ExecutionResult, BackendError>>,
    /// Sum of the simulated device durations. A single-QPU device executes
    /// jobs sequentially, so total device time is the *sum* (this is what
    /// Fig. 5 measures); wall time with parallel classical simulation can
    /// be lower.
    pub total_simulated: Duration,
}

/// Runs all jobs as one batched submission through [`Backend::run_batch`]
/// (parallel on backends with native batching). Results keep submission
/// order.
pub fn run_parallel<B: Backend + ?Sized>(backend: &B, jobs: &[Job]) -> BatchResult {
    let specs: Vec<JobSpec<'_>> = jobs
        .iter()
        .map(|job| JobSpec::new(&job.circuit, job.shots))
        .collect();
    let results = backend.run_batch(&specs);
    let total_simulated = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.simulated_duration)
        .sum();
    BatchResult {
        results,
        total_simulated,
    }
}

/// Runs all jobs sequentially (reference implementation / baseline for the
/// parallel speedup ablation).
pub fn run_sequential<B: Backend + ?Sized>(backend: &B, jobs: &[Job]) -> BatchResult {
    let results: Vec<Result<ExecutionResult, BackendError>> = jobs
        .iter()
        .map(|job| backend.run(&job.circuit, job.shots))
        .collect();
    let total_simulated = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.simulated_duration)
        .sum();
    BatchResult {
        results,
        total_simulated,
    }
}

/// A crossbeam-channel worker pool bound to one backend.
pub struct JobQueue<'b, B: Backend + ?Sized> {
    backend: &'b B,
    workers: usize,
}

impl<'b, B: Backend + ?Sized> JobQueue<'b, B> {
    /// A queue with one worker per available CPU (capped at 8 — device
    /// simulation is memory-bandwidth-bound beyond that).
    pub fn new(backend: &'b B) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8);
        JobQueue { backend, workers }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Drains a job list through the worker pool; results keep submission
    /// order.
    pub fn run(&self, jobs: Vec<Job>) -> BatchResult {
        let n = jobs.len();
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, Job)>();
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<(usize, Result<ExecutionResult, BackendError>)>();

        for (i, job) in jobs.into_iter().enumerate() {
            job_tx.send((i, job)).expect("queue send");
        }
        drop(job_tx);

        crossbeam::scope(|scope| {
            for _ in 0..self.workers {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move |_| {
                    while let Ok((i, job)) = job_rx.recv() {
                        let r = self.backend.run(&job.circuit, job.shots);
                        if res_tx.send((i, r)).is_err() {
                            break;
                        }
                    }
                });
            }
        })
        .expect("worker pool panicked");
        drop(res_tx);

        let mut slots: Vec<Option<Result<ExecutionResult, BackendError>>> =
            (0..n).map(|_| None).collect();
        while let Ok((i, r)) = res_rx.recv() {
            slots[i] = Some(r);
        }
        let results: Vec<_> = slots
            .into_iter()
            .map(|s| s.expect("every job produces a result"))
            .collect();
        let total_simulated = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.simulated_duration)
            .sum();
        BatchResult {
            results,
            total_simulated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealBackend;
    use crate::timing::TimingModel;

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                let mut c = Circuit::new(2);
                c.h(0);
                if i % 2 == 0 {
                    c.cx(0, 1);
                }
                Job {
                    circuit: c,
                    shots: 100 + i as u64,
                    tag: i,
                }
            })
            .collect()
    }

    #[test]
    fn parallel_preserves_order_and_shots() {
        let b = IdealBackend::new(5);
        let js = jobs(7);
        let batch = run_parallel(&b, &js);
        assert_eq!(batch.results.len(), 7);
        for (i, r) in batch.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().counts.total(), 100 + i as u64);
        }
    }

    #[test]
    fn sequential_and_parallel_agree_on_structure() {
        let b = IdealBackend::new(5);
        let js = jobs(4);
        let seq = run_sequential(&b, &js);
        let par = run_parallel(&b, &js);
        for (a, c) in seq.results.iter().zip(&par.results) {
            assert_eq!(
                a.as_ref().unwrap().counts.total(),
                c.as_ref().unwrap().counts.total()
            );
        }
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_sequential_on_same_seed() {
        let js = jobs(8);
        let par = run_parallel(&IdealBackend::new(123), &js);
        let seq = run_sequential(&IdealBackend::new(123), &js);
        for (a, b) in par.results.iter().zip(&seq.results) {
            assert_eq!(a.as_ref().unwrap().counts, b.as_ref().unwrap().counts);
        }
    }

    #[test]
    fn total_simulated_time_is_the_sum() {
        let t = TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 1.0,
        };
        let b = IdealBackend::new(0).with_timing(t);
        let batch = run_parallel(&b, &jobs(5));
        assert!((batch.total_simulated.as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn job_queue_matches_parallel_run() {
        let b = IdealBackend::new(5);
        let q = JobQueue::new(&b).with_workers(3);
        let batch = q.run(jobs(9));
        assert_eq!(batch.results.len(), 9);
        for (i, r) in batch.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().counts.total(), 100 + i as u64);
        }
    }

    #[test]
    fn job_queue_single_worker_works() {
        let b = IdealBackend::new(1);
        let q = JobQueue::new(&b).with_workers(1);
        let batch = q.run(jobs(3));
        assert!(batch.results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn failed_jobs_are_reported_in_place() {
        let b = IdealBackend::new(0).with_capacity(1);
        let mut js = jobs(3); // 2-qubit circuits: all too wide
        js[1].circuit = Circuit::new(1); // this one fits
        js[1].circuit.h(0);
        let batch = run_parallel(&b, &js);
        assert!(batch.results[0].is_err());
        assert!(batch.results[1].is_ok());
        assert!(batch.results[2].is_err());
    }
}
