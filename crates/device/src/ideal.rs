//! Ideal (noiseless) backend — the workspace's Qiskit-Aer stand-in.
//!
//! Runs circuits on the state-vector simulator and samples shot noise
//! multinomially. Deterministic given the constructor seed: each job draws
//! a fresh sub-seed from an atomic counter, so results are reproducible
//! regardless of the order in which parallel jobs are scheduled *per job
//! index*, and two backends with the same seed produce the same stream.

use crate::backend::{Backend, BackendError, ExecutionResult};
use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;
use qcut_sim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Noiseless state-vector backend with shot sampling.
#[derive(Debug)]
pub struct IdealBackend {
    name: String,
    capacity: usize,
    seed: u64,
    job_counter: AtomicU64,
    timing: TimingModel,
}

impl IdealBackend {
    /// A 32-qubit-capacity ideal backend.
    pub fn new(seed: u64) -> Self {
        IdealBackend {
            name: "aer_like_ideal".to_string(),
            capacity: 32,
            seed,
            job_counter: AtomicU64::new(0),
            timing: TimingModel::instantaneous(),
        }
    }

    /// Sets an explicit capacity (for tests exercising the too-wide error).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Attaches a timing model (e.g. to make the ideal backend report
    /// device-like durations in runtime experiments).
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    fn next_job_seed(&self) -> u64 {
        let job = self.job_counter.fetch_add(1, Ordering::Relaxed);
        // SplitMix-style mixing of (seed, job index).
        let mut z = self.seed ^ job.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Backend for IdealBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_qubits(&self) -> usize {
        self.capacity
    }

    fn timing(&self) -> &TimingModel {
        &self.timing
    }

    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        self.check(circuit, shots)?;
        let started = Instant::now();
        let sv = StateVector::from_circuit(circuit);
        let mut rng = StdRng::seed_from_u64(self.next_job_seed());
        let counts = sv.sample(shots, &mut rng);
        Ok(ExecutionResult {
            counts,
            simulated_duration: self.timing.job_duration_as_duration(circuit, shots),
            host_duration: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn runs_and_returns_all_shots() {
        let b = IdealBackend::new(1);
        let r = b.run(&bell(), 5000).unwrap();
        assert_eq!(r.counts.total(), 5000);
        // Bell state: only 00 and 11.
        assert_eq!(r.counts.get(0b01), 0);
        assert_eq!(r.counts.get(0b10), 0);
        let p00 = r.counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn rejects_oversized_circuits() {
        let b = IdealBackend::new(0).with_capacity(1);
        let err = b.run(&bell(), 100).unwrap_err();
        assert!(matches!(
            err,
            BackendError::CircuitTooWide {
                circuit: 2,
                device: 1
            }
        ));
    }

    #[test]
    fn rejects_zero_shots() {
        let b = IdealBackend::new(0);
        assert_eq!(b.run(&bell(), 0).unwrap_err(), BackendError::NoShots);
    }

    #[test]
    fn same_seed_same_stream() {
        let b1 = IdealBackend::new(77);
        let b2 = IdealBackend::new(77);
        let r1 = b1.run(&bell(), 100).unwrap();
        let r2 = b2.run(&bell(), 100).unwrap();
        assert_eq!(r1.counts, r2.counts);
        // Second job differs from the first (fresh sub-seed).
        let r1b = b1.run(&bell(), 100).unwrap();
        assert_ne!(r1.counts, r1b.counts);
    }

    #[test]
    fn simulated_duration_uses_timing_model() {
        let t = TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 1.5,
        };
        let b = IdealBackend::new(0).with_timing(t);
        let r = b.run(&bell(), 10).unwrap();
        assert!((r.simulated_duration.as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
