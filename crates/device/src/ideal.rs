//! Ideal (noiseless) backend — the workspace's Qiskit-Aer stand-in.
//!
//! Runs circuits on the state-vector simulator and samples shot noise
//! multinomially. Deterministic given the constructor seed: each job draws
//! a fresh sub-seed from an atomic counter, so results are reproducible
//! regardless of the order in which parallel jobs are scheduled *per job
//! index*, and two backends with the same seed produce the same stream.

use crate::backend::{
    mix_seed, run_batch_forest, run_batch_indexed, Backend, BackendError, BatchRun, BatchStats,
    ExecutionResult, JobResult, JobSpec,
};
use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;
use qcut_sim::prefix::ForkStateCache;
use qcut_sim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Noiseless state-vector backend with shot sampling.
#[derive(Debug)]
pub struct IdealBackend {
    name: String,
    capacity: usize,
    seed: u64,
    job_counter: AtomicU64,
    timing: TimingModel,
    prefix_sharing: bool,
    /// Warm-start tier 2: fork states kept across batches (and runs) so
    /// repeated prefixes re-simulate only their divergent suffixes.
    state_cache: Option<Mutex<ForkStateCache<StateVector>>>,
}

impl IdealBackend {
    /// A 32-qubit-capacity ideal backend.
    pub fn new(seed: u64) -> Self {
        IdealBackend {
            name: "aer_like_ideal".to_string(),
            capacity: 32,
            seed,
            job_counter: AtomicU64::new(0),
            timing: TimingModel::instantaneous(),
            prefix_sharing: true,
            state_cache: None,
        }
    }

    /// Sets an explicit capacity (for tests exercising the too-wide error).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Attaches a timing model (e.g. to make the ideal backend report
    /// device-like durations in runtime experiments).
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Toggles prefix-shared batch simulation (on by default; `false` is
    /// the per-job ablation baseline for the prefix-sharing bench). Counts
    /// are bit-identical either way.
    pub fn with_prefix_sharing(mut self, enabled: bool) -> Self {
        self.prefix_sharing = enabled;
        self
    }

    /// Attaches a warm-start fork-state cache holding up to `max_states`
    /// states (tier 2 of the cross-run cache). Batches then resume
    /// simulation from the deepest prefix any earlier batch — in this run
    /// or a previous `CutExecutor::run` on the same backend — has already
    /// evolved. Counts are bit-identical with or without the cache; only
    /// host time and the `states_reused` accounting change. Requires
    /// prefix sharing (the default).
    pub fn with_state_reuse(mut self, max_states: usize) -> Self {
        self.state_cache = Some(Mutex::new(ForkStateCache::new(max_states)));
        self
    }

    /// States currently held by the tier-2 cache (0 without one).
    pub fn cached_states(&self) -> usize {
        self.state_cache
            .as_ref()
            .map(|c| c.lock().expect("state cache poisoned").len())
            .unwrap_or(0)
    }

    fn next_job_seed(&self) -> u64 {
        mix_seed(self.seed, self.job_counter.fetch_add(1, Ordering::Relaxed))
    }

    fn run_seeded(
        &self,
        circuit: &Circuit,
        shots: u64,
        job_seed: u64,
    ) -> Result<ExecutionResult, BackendError> {
        self.check(circuit, shots)?;
        let started = Instant::now();
        let sv = StateVector::from_circuit(circuit);
        let mut rng = StdRng::seed_from_u64(job_seed);
        let counts = sv.sample(shots, &mut rng);
        Ok(ExecutionResult {
            counts,
            simulated_duration: self.timing.job_duration_as_duration(circuit, shots),
            host_duration: started.elapsed(),
        })
    }
}

impl Backend for IdealBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_qubits(&self) -> usize {
        self.capacity
    }

    fn timing(&self) -> &TimingModel {
        &self.timing
    }

    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        self.run_seeded(circuit, shots, self.next_job_seed())
    }

    /// Native batched execution: sub-seeds are assigned by *batch
    /// position*, not scheduling order — so the counts are deterministic
    /// under any thread interleaving and identical to running the same
    /// jobs one by one through [`Backend::run`]. With prefix sharing on
    /// (the default) the batch is simulated through a
    /// [`qcut_sim::prefix::PrefixForest`]: each shared instruction prefix
    /// evolves once, the state vector forks at branch points, and every
    /// distinct final state builds one CDF table reused by all jobs ending
    /// there — same bits, `O(G + Σ suffix)` instead of `O(V·G)` gates.
    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        if !self.prefix_sharing {
            let results = run_batch_indexed(&self.job_counter, jobs, |job, idx| {
                self.run_seeded(job.circuit, job.shots, mix_seed(self.seed, idx))
            });
            let stats = BatchStats::unshared(jobs, &results);
            return BatchRun { results, stats };
        }
        run_batch_forest(
            &self.job_counter,
            self.seed,
            jobs,
            |c, s| self.check(c, s),
            StateVector::zero_state,
            |state: &StateVector| state.probabilities(),
            &self.timing,
            self.state_cache.as_ref(),
        )
    }

    /// Kept in lockstep with [`Backend::run_batch_stats`] (the trait's
    /// default `run_batch` would bypass the batch-position seeding and the
    /// prefix forest).
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        self.run_batch_stats(jobs).results
    }

    /// Per-job sub-seeds are a pure function of (constructor seed, batch
    /// position): equal requests reproduce equal histograms.
    fn deterministic_seeding(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn runs_and_returns_all_shots() {
        let b = IdealBackend::new(1);
        let r = b.run(&bell(), 5000).unwrap();
        assert_eq!(r.counts.total(), 5000);
        // Bell state: only 00 and 11.
        assert_eq!(r.counts.get(0b01), 0);
        assert_eq!(r.counts.get(0b10), 0);
        let p00 = r.counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn rejects_oversized_circuits() {
        let b = IdealBackend::new(0).with_capacity(1);
        let err = b.run(&bell(), 100).unwrap_err();
        assert!(matches!(
            err,
            BackendError::CircuitTooWide {
                circuit: 2,
                device: 1
            }
        ));
    }

    #[test]
    fn rejects_zero_shots() {
        let b = IdealBackend::new(0);
        assert_eq!(b.run(&bell(), 0).unwrap_err(), BackendError::NoShots);
    }

    #[test]
    fn same_seed_same_stream() {
        let b1 = IdealBackend::new(77);
        let b2 = IdealBackend::new(77);
        let r1 = b1.run(&bell(), 100).unwrap();
        let r2 = b2.run(&bell(), 100).unwrap();
        assert_eq!(r1.counts, r2.counts);
        // Second job differs from the first (fresh sub-seed).
        let r1b = b1.run(&bell(), 100).unwrap();
        assert_ne!(r1.counts, r1b.counts);
    }

    #[test]
    fn batched_run_is_bit_identical_to_sequential_runs() {
        let bell_c = bell();
        let mut ghz = Circuit::new(3);
        ghz.h(0).cx(0, 1).cx(1, 2);
        let jobs: Vec<JobSpec<'_>> = (0..6u64)
            .map(|i| JobSpec::new(if i % 2 == 0 { &bell_c } else { &ghz }, 400 + i))
            .collect();
        let batched = IdealBackend::new(42).run_batch(&jobs);
        let sequential: Vec<JobResult> = {
            let b = IdealBackend::new(42);
            jobs.iter().map(|j| b.run(j.circuit, j.shots)).collect()
        };
        for (a, b) in batched.iter().zip(&sequential) {
            assert_eq!(a.as_ref().unwrap().counts, b.as_ref().unwrap().counts);
        }
    }

    #[test]
    fn prefix_sharing_is_bit_identical_to_per_job_simulation() {
        // Upstream-variant-shaped batch: one shared prefix, tiny suffixes,
        // plus an exact duplicate and an unrelated circuit.
        let mut base = Circuit::new(3);
        base.h(0).cx(0, 1).ry(0.3, 2).cx(1, 2);
        let mut x_rot = base.clone();
        x_rot.h(2);
        let mut y_rot = base.clone();
        y_rot.sdg(2).h(2);
        let mut other = Circuit::new(2);
        other.x(0).h(1);
        let circuits = [&base, &x_rot, &y_rot, &base, &other];
        let jobs: Vec<JobSpec<'_>> = circuits
            .iter()
            .enumerate()
            .map(|(i, c)| JobSpec::new(c, 300 + i as u64))
            .collect();

        let shared = IdealBackend::new(7).run_batch_stats(&jobs);
        let unshared = IdealBackend::new(7)
            .with_prefix_sharing(false)
            .run_batch_stats(&jobs);
        for (a, b) in shared.results.iter().zip(&unshared.results) {
            assert_eq!(a.as_ref().unwrap().counts, b.as_ref().unwrap().counts);
        }
        // And both match a sequential loop over `run`.
        let seq = IdealBackend::new(7);
        for (job, r) in jobs.iter().zip(&shared.results) {
            let s = seq.run(job.circuit, job.shots).unwrap();
            assert_eq!(r.as_ref().unwrap().counts, s.counts);
        }
        // Accounting: sharing applied fewer gates for the same batch.
        assert_eq!(shared.stats.gates_naive, unshared.stats.gates_naive);
        assert!(shared.stats.gates_applied < shared.stats.gates_naive);
        assert_eq!(unshared.stats.gates_saved(), 0);
        // base appears twice but is one terminal node (one CDF table).
        assert_eq!(shared.stats.unique_states, 4);
        assert!(shared.stats.prefix_nodes >= 4);
    }

    #[test]
    fn prefix_shared_batch_reports_errors_in_place() {
        let b = IdealBackend::new(0).with_capacity(2);
        let mut wide = Circuit::new(3);
        wide.h(0);
        let mut fits = Circuit::new(2);
        fits.h(0);
        let jobs = vec![
            JobSpec::new(&wide, 10),
            JobSpec::new(&fits, 10),
            JobSpec::new(&fits, 0),
        ];
        let run = b.run_batch_stats(&jobs);
        assert!(matches!(
            run.results[0],
            Err(BackendError::CircuitTooWide { .. })
        ));
        assert!(run.results[1].is_ok());
        assert!(matches!(run.results[2], Err(BackendError::NoShots)));
        // Invalid jobs stay out of the gate accounting.
        assert_eq!(run.stats.gates_naive, 1);
    }

    #[test]
    fn batch_errors_are_reported_in_place() {
        let b = IdealBackend::new(0).with_capacity(1);
        let wide = bell();
        let mut fits = Circuit::new(1);
        fits.h(0);
        let jobs = vec![
            JobSpec::new(&wide, 10),
            JobSpec::new(&fits, 10),
            JobSpec::new(&fits, 0),
        ];
        let results = b.run_batch(&jobs);
        assert!(matches!(
            results[0],
            Err(BackendError::CircuitTooWide { .. })
        ));
        assert!(results[1].is_ok());
        assert!(matches!(results[2], Err(BackendError::NoShots)));
    }

    #[test]
    fn state_reuse_is_bit_identical_and_counts_reused_states() {
        // Sweep-shaped workload: same fragment, varying final rotation.
        let mut base = Circuit::new(3);
        base.h(0).cx(0, 1).ry(0.3, 2).cx(1, 2);
        let mut a = base.clone();
        a.rz(0.1, 2);
        let mut b = base.clone();
        b.rz(0.2, 2);

        let plain = IdealBackend::new(5);
        let warm = IdealBackend::new(5).with_state_reuse(64);
        let jobs_a = [JobSpec::new(&a, 500)];
        let r_plain_a = plain.run_batch_stats(&jobs_a);
        let r_warm_a = warm.run_batch_stats(&jobs_a);
        assert_eq!(r_warm_a.stats.states_reused, 0, "first batch is cold");
        assert!(warm.cached_states() > 0, "cold batch exports its states");

        let jobs_b = [JobSpec::new(&b, 500), JobSpec::new(&a, 500)];
        let r_plain_b = plain.run_batch_stats(&jobs_b);
        let r_warm_b = warm.run_batch_stats(&jobs_b);
        assert!(
            r_warm_b.stats.states_reused > 0,
            "second batch resumes from cached prefixes"
        );
        assert!(
            r_warm_b.stats.gates_applied < r_plain_b.stats.gates_applied,
            "reused segments drop out of the gate accounting"
        );
        for (p, w) in r_plain_a
            .results
            .iter()
            .chain(&r_plain_b.results)
            .zip(r_warm_a.results.iter().chain(&r_warm_b.results))
        {
            assert_eq!(
                p.as_ref().unwrap().counts,
                w.as_ref().unwrap().counts,
                "state reuse must not change a single sampled bit"
            );
        }
    }

    #[test]
    fn cache_fingerprint_separates_ideal_from_noisy() {
        use crate::noisy::NoisyBackend;
        use qcut_sim::noise::NoiseModel;
        let ideal = IdealBackend::new(1);
        let noisy = NoisyBackend::new(
            "fake_lagos",
            7,
            NoiseModel::depolarizing(0.01, 0.02, 0.01),
            TimingModel::instantaneous(),
            1,
        );
        let quieter = NoisyBackend::new(
            "fake_lagos",
            7,
            NoiseModel::depolarizing(0.001, 0.002, 0.001),
            TimingModel::instantaneous(),
            99, // seed deliberately differs: it must not matter
        );
        assert_ne!(ideal.cache_fingerprint(), noisy.cache_fingerprint());
        assert_ne!(noisy.cache_fingerprint(), quieter.cache_fingerprint());
        // Same device model, different seed: same fingerprint (histograms
        // from different seeds are statistically poolable).
        let reseeded = IdealBackend::new(123);
        assert_eq!(ideal.cache_fingerprint(), reseeded.cache_fingerprint());
        assert!(ideal.deterministic_seeding() && noisy.deterministic_seeding());
    }

    #[test]
    fn simulated_duration_uses_timing_model() {
        let t = TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 1.5,
        };
        let b = IdealBackend::new(0).with_timing(t);
        let r = b.run(&bell(), 10).unwrap();
        assert!((r.simulated_duration.as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
