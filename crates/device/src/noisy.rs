//! Noisy backend — the workspace's substitute for the paper's IBM
//! superconducting devices (see DESIGN.md §4 for the substitution
//! argument).
//!
//! Evolution is exact density-matrix simulation with the configured
//! [`NoiseModel`]: after every gate a depolarizing channel plus optional
//! thermal relaxation is applied to the operand qubits; at measurement the
//! readout confusion matrix acts on the outcome probabilities, and shots
//! are sampled from the corrupted distribution.

use crate::backend::{
    mix_seed, run_batch_forest, run_batch_indexed, Backend, BackendError, BatchRun, BatchStats,
    ExecutionResult, JobResult, JobSpec,
};
use crate::timing::TimingModel;
use qcut_circuit::circuit::{Circuit, Instruction};
use qcut_math::Matrix;
use qcut_sim::counts::sample_counts;
use qcut_sim::density::DensityMatrix;
use qcut_sim::noise::{KrausChannel, NoiseModel};
use qcut_sim::prefix::ForkState;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Density-matrix backend with gate noise, thermal relaxation and readout
/// error.
pub struct NoisyBackend {
    name: String,
    capacity: usize,
    noise: NoiseModel,
    timing: TimingModel,
    seed: u64,
    job_counter: AtomicU64,
    /// Pre-built thermal channels (1q and 2q gate durations).
    thermal_1q: Option<KrausChannel>,
    thermal_2q: Option<KrausChannel>,
    prefix_sharing: bool,
}

impl NoisyBackend {
    /// Builds a noisy backend.
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        noise: NoiseModel,
        timing: TimingModel,
        seed: u64,
    ) -> Self {
        let (thermal_1q, thermal_2q) = match noise.thermal {
            Some(spec) => (
                Some(KrausChannel::thermal_relaxation(
                    spec.t1,
                    spec.t2,
                    spec.time_1q,
                )),
                Some(KrausChannel::thermal_relaxation(
                    spec.t1,
                    spec.t2,
                    spec.time_2q,
                )),
            ),
            None => (None, None),
        };
        NoisyBackend {
            name: name.into(),
            capacity,
            noise,
            timing,
            seed,
            job_counter: AtomicU64::new(0),
            thermal_1q,
            thermal_2q,
            prefix_sharing: true,
        }
    }

    /// The backend's noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Toggles prefix-shared batch simulation (on by default; `false` is
    /// the per-job ablation baseline). Counts are bit-identical either way.
    pub fn with_prefix_sharing(mut self, enabled: bool) -> Self {
        self.prefix_sharing = enabled;
        self
    }

    fn next_job_seed(&self) -> u64 {
        mix_seed(self.seed, self.job_counter.fetch_add(1, Ordering::Relaxed))
    }

    fn run_seeded(
        &self,
        circuit: &Circuit,
        shots: u64,
        job_seed: u64,
    ) -> Result<ExecutionResult, BackendError> {
        self.check(circuit, shots)?;
        let started = Instant::now();
        let probs = self.exact_probabilities(circuit);
        let mut rng = StdRng::seed_from_u64(job_seed);
        let counts = sample_counts(circuit.num_qubits(), &probs, shots, &mut rng);
        Ok(ExecutionResult {
            counts,
            simulated_duration: self.timing.job_duration_as_duration(circuit, shots),
            host_duration: started.elapsed(),
        })
    }

    /// Applies one unitary instruction followed by the configured noise
    /// channels on its operand qubits — the single evolution step shared by
    /// [`NoisyBackend::exact_probabilities`] and the prefix-shared batch
    /// walk (both must perform the identical operation sequence for the
    /// batched-equals-sequential contract).
    fn apply_noisy_instruction(&self, dm: &mut DensityMatrix, inst: &Instruction) {
        dm.apply_instruction(inst);
        match inst.qubits.len() {
            1 => {
                if let Some(ch) = &self.noise.one_qubit {
                    dm.apply_kraus_one(ch.operators(), inst.qubits[0]);
                }
                if let Some(th) = &self.thermal_1q {
                    dm.apply_kraus_one(th.operators(), inst.qubits[0]);
                }
            }
            2 => {
                if let Some(ch) = &self.noise.two_qubit {
                    dm.apply_kraus_two(ch.operators(), inst.qubits[0], inst.qubits[1]);
                }
                if let Some(th) = &self.thermal_2q {
                    // Thermal relaxation acts independently per qubit.
                    dm.apply_kraus_one(th.operators(), inst.qubits[0]);
                    dm.apply_kraus_one(th.operators(), inst.qubits[1]);
                }
            }
            _ => unreachable!(),
        }
    }

    /// Readout-corrupted outcome distribution of an evolved density matrix
    /// (the per-leaf finalisation of the batch walk).
    fn readout_probabilities(&self, dm: &DensityMatrix) -> Vec<f64> {
        let mut dm = dm.clone();
        dm.renormalize();
        let probs = dm.probabilities();
        self.noise.readout.apply_to_probs(&probs, dm.num_qubits())
    }

    /// Exact noisy output distribution (before shot sampling): density
    /// matrix evolution + readout confusion. Exposed for tests and for
    /// infinite-shot analyses.
    pub fn exact_probabilities(&self, circuit: &Circuit) -> Vec<f64> {
        let mut dm = DensityMatrix::zero_state(circuit.num_qubits());
        for inst in circuit.instructions() {
            self.apply_noisy_instruction(&mut dm, inst);
        }
        self.readout_probabilities(&dm)
    }
}

/// A density matrix evolving under this backend's noise model — the
/// [`ForkState`] the prefix-shared batch walk clones at trie branch points.
#[derive(Clone)]
struct NoisyEvolution<'b> {
    backend: &'b NoisyBackend,
    dm: DensityMatrix,
}

impl ForkState for NoisyEvolution<'_> {
    fn apply(&mut self, inst: &Instruction) {
        self.backend.apply_noisy_instruction(&mut self.dm, inst);
    }
}

impl Backend for NoisyBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_qubits(&self) -> usize {
        self.capacity
    }

    fn timing(&self) -> &TimingModel {
        &self.timing
    }

    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        self.run_seeded(circuit, shots, self.next_job_seed())
    }

    /// Native batched execution. The expensive per-backend noise setup (the
    /// pre-built thermal Kraus channels) is shared across the whole batch,
    /// sub-seeds are assigned by batch position (batched results are
    /// bit-identical to a sequential loop over [`Backend::run`]), and with
    /// prefix sharing on the density-matrix evolution of shared circuit
    /// prefixes — the dominant `O(4^n)`-per-gate cost — runs once per
    /// prefix, forking at trie branch points.
    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        if !self.prefix_sharing {
            let results = run_batch_indexed(&self.job_counter, jobs, |job, idx| {
                self.run_seeded(job.circuit, job.shots, mix_seed(self.seed, idx))
            });
            let stats = BatchStats::unshared(jobs, &results);
            return BatchRun { results, stats };
        }
        run_batch_forest(
            &self.job_counter,
            self.seed,
            jobs,
            |c, s| self.check(c, s),
            |width| NoisyEvolution {
                backend: self,
                dm: DensityMatrix::zero_state(width),
            },
            |state: &NoisyEvolution<'_>| self.readout_probabilities(&state.dm),
            &self.timing,
            // No tier-2 state cache: `NoisyEvolution` borrows the backend,
            // so caching it inside the backend would be self-referential;
            // density matrices are also the least rewarding states to hold.
            None,
        )
    }

    /// Kept in lockstep with [`Backend::run_batch_stats`] (the trait's
    /// default `run_batch` would bypass the batch-position seeding and the
    /// prefix forest).
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        self.run_batch_stats(jobs).results
    }

    /// Folds the noise character into the device fingerprint: histograms
    /// measured under one noise model must never be pooled with another's
    /// (nor with an ideal backend's — see the cache-isolation tests).
    fn cache_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for b in self.name.bytes() {
            mix(u64::from(b));
        }
        mix(self.capacity as u64);
        mix(self.noise.fingerprint());
        h
    }

    /// Per-job sub-seeds are a pure function of (constructor seed, batch
    /// position): equal requests reproduce equal histograms.
    fn deterministic_seeding(&self) -> bool {
        true
    }

    /// Deterministic Bell-probe figure of merit: the total-variation
    /// distance between this backend's exact noisy output distribution on
    /// a 2-qubit Bell circuit and the noiseless one. Zero for a noiseless
    /// model; grows monotonically with depolarizing/readout strength —
    /// exactly the ordering `PlacementPolicy::NoiseAware` needs.
    fn noise_score(&self) -> f64 {
        if self.noise.is_noiseless() {
            return 0.0;
        }
        let probe_width = self.capacity.clamp(1, 2);
        let mut probe = Circuit::new(probe_width);
        probe.h(0);
        if probe_width > 1 {
            probe.cx(0, 1);
        }
        tvd(
            &self.exact_probabilities(&probe),
            &ideal_probabilities(&probe),
        )
    }
}

/// A helper used by tests: the exact (infinite-shot) distribution of the
/// noiseless circuit, for comparing noise magnitudes.
pub fn ideal_probabilities(circuit: &Circuit) -> Vec<f64> {
    use qcut_sim::statevector::StateVector;
    StateVector::from_circuit(circuit).probabilities()
}

/// Total-variation distance between two probability vectors (test helper).
pub fn tvd(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

#[allow(dead_code)]
fn _assert_traits()
where
    NoisyBackend: Sync,
{
    // NoisyBackend must stay Sync for rayon fan-out; Matrix is only used
    // behind &self.
    let _ = std::mem::size_of::<Matrix>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_sim::noise::{ReadoutError, ThermalSpec};

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    fn noisy(seed: u64) -> NoisyBackend {
        NoisyBackend::new(
            "test_noisy",
            5,
            NoiseModel::depolarizing(0.002, 0.02, 0.02),
            TimingModel::ibm_like(),
            seed,
        )
    }

    #[test]
    fn noise_perturbs_but_does_not_destroy() {
        let b = noisy(1);
        let noisy_probs = b.exact_probabilities(&bell());
        let ideal = ideal_probabilities(&bell());
        let d = tvd(&noisy_probs, &ideal);
        assert!(d > 1e-4, "noise had no effect (tvd = {d})");
        assert!(d < 0.2, "noise destroyed the state (tvd = {d})");
        // Forbidden outcomes now have small but nonzero probability.
        assert!(noisy_probs[0b01] > 0.0);
    }

    #[test]
    fn probabilities_remain_normalised() {
        let b = noisy(2);
        let probs = b.exact_probabilities(&bell());
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn thermal_relaxation_biases_toward_ground() {
        let model = NoiseModel {
            one_qubit: None,
            two_qubit: None,
            thermal: Some(ThermalSpec {
                t1: 10e-6,
                t2: 10e-6,
                time_1q: 2e-6, // exaggerated: 20% of T1 per gate
                time_2q: 4e-6,
            }),
            readout: ReadoutError::none(),
        };
        let b = NoisyBackend::new("thermal", 2, model, TimingModel::ibm_like(), 0);
        let mut c = Circuit::new(1);
        c.x(0); // |1>
        let probs = b.exact_probabilities(&c);
        assert!(probs[0] > 0.15, "expected decay toward |0>, got {probs:?}");
        assert!(probs[1] < 0.85);
    }

    #[test]
    fn readout_error_flips_deterministic_outcomes() {
        let model = NoiseModel {
            one_qubit: None,
            two_qubit: None,
            thermal: None,
            readout: ReadoutError::symmetric(0.05),
        };
        let b = NoisyBackend::new("ro", 1, model, TimingModel::ibm_like(), 0);
        let c = Circuit::new(1); // |0> always
        let probs = b.exact_probabilities(&c);
        assert!((probs[1] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn run_samples_and_accounts_time() {
        let b = noisy(3);
        let r = b.run(&bell(), 1000).unwrap();
        assert_eq!(r.counts.total(), 1000);
        // ibm_like: 2 s job overhead dominates.
        let t = r.simulated_duration.as_secs_f64();
        assert!(t > 1.85 && t < 2.4, "simulated duration {t}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let r1 = noisy(9).run(&bell(), 200).unwrap();
        let r2 = noisy(9).run(&bell(), 200).unwrap();
        assert_eq!(r1.counts, r2.counts);
    }

    #[test]
    fn batched_run_is_bit_identical_to_sequential_runs() {
        let c = bell();
        let jobs: Vec<JobSpec<'_>> = (0..5).map(|i| JobSpec::new(&c, 150 + i)).collect();
        let batched = noisy(31).run_batch(&jobs);
        let seq_backend = noisy(31);
        for (job, r) in jobs.iter().zip(&batched) {
            let s = seq_backend.run(job.circuit, job.shots).unwrap();
            assert_eq!(r.as_ref().unwrap().counts, s.counts);
        }
    }

    #[test]
    fn prefix_sharing_is_bit_identical_on_the_noisy_backend() {
        // Shared-prefix variants of a noisy fragment: the density-matrix
        // evolution (gates + Kraus channels) of the prefix runs once.
        let mut base = Circuit::new(2);
        base.h(0).cx(0, 1).ry(0.4, 1);
        let mut x_rot = base.clone();
        x_rot.h(1);
        let mut y_rot = base.clone();
        y_rot.sdg(1).h(1);
        let circuits = [&base, &x_rot, &y_rot, &x_rot];
        let jobs: Vec<JobSpec<'_>> = circuits
            .iter()
            .enumerate()
            .map(|(i, c)| JobSpec::new(c, 200 + i as u64))
            .collect();

        let shared = noisy(21).run_batch_stats(&jobs);
        let unshared = noisy(21).with_prefix_sharing(false).run_batch_stats(&jobs);
        for (a, b) in shared.results.iter().zip(&unshared.results) {
            assert_eq!(a.as_ref().unwrap().counts, b.as_ref().unwrap().counts);
        }
        let seq = noisy(21);
        for (job, r) in jobs.iter().zip(&shared.results) {
            let s = seq.run(job.circuit, job.shots).unwrap();
            assert_eq!(r.as_ref().unwrap().counts, s.counts);
        }
        assert!(shared.stats.gates_applied < shared.stats.gates_naive);
        assert_eq!(shared.stats.unique_states, 3);
    }

    #[test]
    fn capacity_enforced() {
        let b = noisy(0);
        let mut wide = Circuit::new(6);
        wide.h(0);
        assert!(matches!(
            b.run(&wide, 10),
            Err(BackendError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn noiseless_model_matches_ideal_simulator() {
        let b = NoisyBackend::new(
            "clean",
            4,
            NoiseModel::noiseless(),
            TimingModel::instantaneous(),
            0,
        );
        let probs = b.exact_probabilities(&bell());
        let ideal = ideal_probabilities(&bell());
        assert!(tvd(&probs, &ideal) < 1e-10);
    }
}
