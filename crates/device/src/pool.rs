//! Multi-backend sharding: a pool of heterogeneous devices behind one
//! [`Backend`] facade, with a capacity- and noise-aware placement engine.
//!
//! A [`BackendPool`] owns a set of member backends (ideal, noisy,
//! fault-injecting — anything implementing [`Backend`]) and shards every
//! batched submission across them under a [`PlacementPolicy`]:
//!
//! | Policy | Rule |
//! |---|---|
//! | [`PlacementPolicy::RoundRobin`] | cycle through feasible members in index order |
//! | [`PlacementPolicy::LeastLoaded`] | greedy makespan balancing by [`TimingModel::job_duration`] |
//! | [`PlacementPolicy::NoiseAware`] | wide (noise-sensitive) jobs pin to the low-noise tier, narrow jobs balance across all feasible members |
//! | [`PlacementPolicy::Pinned`] | explicit job-index → member map (tests, manual layouts) |
//!
//! Placement is a pure function of the job list and the pool
//! configuration — no clocks, no RNG — so the same submission always
//! shards the same way. Every policy respects per-member qubit capacity:
//! a member never receives a circuit wider than its device, and a job no
//! member can fit is reported as infeasible rather than silently dropped.
//!
//! The pool implements [`Backend`] itself, so it slots into every
//! existing seam: `CutExecutor::new(&pool)` shards a whole cutting run.
//! The JobGraph engine detects pools via [`Backend::as_pool`] and routes
//! execution through its pool-aware path, which adds per-member
//! accounting, per-member warm-cache fingerprints, and sibling failover
//! for transient faults (see `qcut_core::jobgraph`). Calling the pool's
//! own [`Backend::run_batch_stats`] directly gives the single-attempt
//! sharded semantics without failover.

use crate::backend::{
    Backend, BackendError, BatchRun, BatchStats, ExecutionResult, JobResult, JobSpec,
};
use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;

/// How a [`BackendPool`] assigns jobs to members.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementPolicy {
    /// Cycle through the members in index order, skipping members whose
    /// capacity cannot fit the job.
    RoundRobin,
    /// Greedy makespan balancing: each job (in submission order) goes to
    /// the feasible member with the smallest accumulated predicted load,
    /// where load is the sum of [`TimingModel::job_duration`] estimates
    /// of the jobs already assigned to that member. Ties break toward
    /// the lower member index.
    LeastLoaded,
    /// Noise-aware placement: members are split into a low-noise tier
    /// (noise score at or below the midpoint of the pool's score range)
    /// and the rest. Noise-sensitive jobs — circuits at or above the
    /// midpoint of the batch's width range — are balanced (least-loaded)
    /// across the feasible low-noise tier only; narrow jobs balance
    /// across every feasible member. On a homogeneous pool every member
    /// is low-noise and the policy degenerates to [`Self::LeastLoaded`].
    NoiseAware,
    /// Explicit placement: job `i` goes to member `map[i % map.len()]`.
    /// An out-of-range or capacity-infeasible pin makes the job
    /// infeasible. An empty map makes every job infeasible.
    Pinned(Vec<usize>),
}

/// One member's placement-relevant identity, as an owned snapshot (what
/// the static-analysis pool lints read).
#[derive(Debug, Clone, PartialEq)]
pub struct MemberInfo {
    /// The member's [`Backend::name`].
    pub name: String,
    /// The member's qubit capacity.
    pub capacity: usize,
    /// The member's [`Backend::cache_fingerprint`] — the key the warm
    /// cache uses for histograms measured on this member.
    pub fingerprint: u64,
    /// The member's [`Backend::noise_score`].
    pub noise_score: f64,
}

/// The result of placing one batch: a member index per job, `None` for
/// jobs no member can fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-job member assignment, in submission order.
    pub assignment: Vec<Option<usize>>,
    /// Predicted per-member load (seconds of simulated device time)
    /// accumulated by the policy while placing. Zero entries are members
    /// the placement left idle.
    pub predicted_load: Vec<f64>,
}

impl Placement {
    /// Number of jobs assigned to each member.
    pub fn jobs_per_member(&self, members: usize) -> Vec<u64> {
        let mut per = vec![0u64; members];
        for &a in &self.assignment {
            if let Some(m) = a {
                per[m] += 1;
            }
        }
        per
    }
}

/// A set of heterogeneous backends behind one [`Backend`] facade, sharding
/// batches across members under a [`PlacementPolicy`].
///
/// ```
/// use qcut_device::pool::{BackendPool, PlacementPolicy};
/// use qcut_device::ideal::IdealBackend;
/// use qcut_device::backend::{Backend, JobSpec};
/// use qcut_circuit::circuit::Circuit;
///
/// let pool = BackendPool::new(PlacementPolicy::RoundRobin)
///     .with_backend(IdealBackend::new(1))
///     .with_backend(IdealBackend::new(2));
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cx(0, 1).cx(1, 2);
/// let jobs = [JobSpec::new(&bell, 100), JobSpec::new(&ghz, 100)];
/// let placement = pool.place(&jobs);
/// assert_eq!(placement.assignment, vec![Some(0), Some(1)]);
/// let run = pool.run_batch_stats(&jobs);
/// assert!(run.results.iter().all(|r| r.is_ok()));
/// ```
pub struct BackendPool {
    members: Vec<Box<dyn Backend>>,
    policy: PlacementPolicy,
    name: String,
    /// Returned by [`Backend::timing`] when the pool is empty; member 0's
    /// model is representative otherwise.
    fallback_timing: TimingModel,
}

impl std::fmt::Debug for BackendPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendPool")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl BackendPool {
    /// An empty pool under `policy`. Add members with
    /// [`Self::with_backend`] / [`Self::with_member`]; an empty pool
    /// rejects every job as [`BackendError::Unavailable`].
    pub fn new(policy: PlacementPolicy) -> Self {
        BackendPool {
            members: Vec::new(),
            policy,
            name: "backend_pool".to_string(),
            fallback_timing: TimingModel::instantaneous(),
        }
    }

    /// Adds a member backend (builder form, taking ownership).
    pub fn with_backend<B: Backend + 'static>(self, backend: B) -> Self {
        self.with_member(Box::new(backend))
    }

    /// Adds an already-boxed member backend.
    pub fn with_member(mut self, member: Box<dyn Backend>) -> Self {
        self.members.push(member);
        self
    }

    /// Renames the pool (the default name is `backend_pool`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the placement policy.
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The configured placement policy.
    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Member `i` (callers index within `0..self.len()`).
    pub fn member(&self, i: usize) -> &dyn Backend {
        &*self.members[i]
    }

    /// Iterates the members in index order.
    pub fn members(&self) -> impl Iterator<Item = &dyn Backend> + '_ {
        self.members.iter().map(|m| &**m)
    }

    /// Owned per-member identity snapshot (what the `QA70x` analysis
    /// lints read).
    pub fn member_info(&self) -> Vec<MemberInfo> {
        self.members
            .iter()
            .map(|m| MemberInfo {
                name: m.name().to_string(),
                capacity: m.num_qubits(),
                fingerprint: m.cache_fingerprint(),
                noise_score: m.noise_score(),
            })
            .collect()
    }

    /// Member indices whose capacity fits a `width`-qubit circuit, in
    /// index order.
    pub fn feasible_members(&self, width: usize) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&m| self.members[m].num_qubits() >= width)
            .collect()
    }

    /// The next member after `from` (cyclically, excluding `from` itself)
    /// that fits a `width`-qubit circuit — the failover sibling order the
    /// pool-aware retry engine uses.
    pub fn failover_sibling(&self, from: usize, width: usize) -> Option<usize> {
        let n = self.members.len();
        (1..n)
            .map(|step| (from + step) % n)
            .find(|&m| self.members[m].num_qubits() >= width)
    }

    /// Places `jobs` onto members under the configured policy. Placement
    /// is deterministic: a pure function of the job list (circuit widths,
    /// predicted durations) and the pool configuration.
    pub fn place(&self, jobs: &[JobSpec<'_>]) -> Placement {
        let n = self.members.len();
        let mut assignment = vec![None; jobs.len()];
        let mut load = vec![0.0f64; n];
        if n == 0 {
            return Placement {
                assignment,
                predicted_load: load,
            };
        }
        let duration = |m: usize, job: &JobSpec<'_>| -> f64 {
            self.members[m]
                .timing()
                .job_duration(job.circuit, job.shots)
        };
        let least_loaded = |candidates: &[usize], load: &[f64]| -> Option<usize> {
            candidates.iter().copied().min_by(|&a, &b| {
                load[a]
                    .partial_cmp(&load[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
        };
        match &self.policy {
            PlacementPolicy::RoundRobin => {
                let mut cursor = 0usize;
                for (i, job) in jobs.iter().enumerate() {
                    let width = job.circuit.num_qubits();
                    let chosen = (0..n)
                        .map(|step| (cursor + step) % n)
                        .find(|&m| self.members[m].num_qubits() >= width);
                    if let Some(m) = chosen {
                        assignment[i] = Some(m);
                        load[m] += duration(m, job);
                        cursor = (m + 1) % n;
                    }
                }
            }
            PlacementPolicy::LeastLoaded => {
                for (i, job) in jobs.iter().enumerate() {
                    let feasible = self.feasible_members(job.circuit.num_qubits());
                    if let Some(m) = least_loaded(&feasible, &load) {
                        assignment[i] = Some(m);
                        load[m] += duration(m, job);
                    }
                }
            }
            PlacementPolicy::NoiseAware => {
                let scores: Vec<f64> = self.members.iter().map(|m| m.noise_score()).collect();
                let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let score_mid = (lo + hi) / 2.0;
                let widths: Vec<usize> = jobs.iter().map(|j| j.circuit.num_qubits()).collect();
                let w_lo = widths.iter().copied().min().unwrap_or(0);
                let w_hi = widths.iter().copied().max().unwrap_or(0);
                let width_mid = (w_lo + w_hi) as f64 / 2.0;
                for (i, job) in jobs.iter().enumerate() {
                    let width = job.circuit.num_qubits();
                    let feasible = self.feasible_members(width);
                    let sensitive = width as f64 >= width_mid;
                    let tier: Vec<usize> = if sensitive {
                        let low: Vec<usize> = feasible
                            .iter()
                            .copied()
                            .filter(|&m| scores[m] <= score_mid)
                            .collect();
                        // A wide job only a noisy member can fit still
                        // runs there — capacity beats noise preference.
                        if low.is_empty() {
                            feasible
                        } else {
                            low
                        }
                    } else {
                        feasible
                    };
                    if let Some(m) = least_loaded(&tier, &load) {
                        assignment[i] = Some(m);
                        load[m] += duration(m, job);
                    }
                }
            }
            PlacementPolicy::Pinned(map) => {
                for (i, job) in jobs.iter().enumerate() {
                    if map.is_empty() {
                        continue;
                    }
                    let m = map[i % map.len()];
                    if m < n && self.members[m].num_qubits() >= job.circuit.num_qubits() {
                        assignment[i] = Some(m);
                        load[m] += duration(m, job);
                    }
                }
            }
        }
        Placement {
            assignment,
            predicted_load: load,
        }
    }

    /// Shards one batch across the members (single attempt, no failover)
    /// and reassembles the results in submission order. Member batches are
    /// submitted in member-index order, each preserving submission order
    /// within the member — so per-member seed streams are a deterministic
    /// function of the placement, and a single-member pool submits the
    /// exact batch the bare backend would have seen.
    fn run_sharded(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        let placement = self.place(jobs);
        let mut slots: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
        let mut stats = BatchStats::default();
        for m in 0..self.members.len() {
            let mine: Vec<usize> = (0..jobs.len())
                .filter(|&i| placement.assignment[i] == Some(m))
                .collect();
            if mine.is_empty() {
                continue;
            }
            let batch: Vec<JobSpec<'_>> = mine.iter().map(|&i| jobs[i]).collect();
            let run = self.members[m].run_batch_stats(&batch);
            stats.absorb(&run.stats);
            for (&i, result) in mine.iter().zip(run.results) {
                slots[i] = Some(result);
            }
        }
        let results = slots
            .into_iter()
            .zip(jobs)
            .map(|(slot, job)| slot.unwrap_or_else(|| Err(self.infeasible_error(job.circuit))))
            .collect();
        BatchRun { results, stats }
    }

    /// The error an unplaceable job reports: capacity-infeasible on a
    /// non-empty pool, [`BackendError::Unavailable`] on an empty one.
    fn infeasible_error(&self, circuit: &Circuit) -> BackendError {
        if self.members.is_empty() {
            BackendError::Unavailable
        } else {
            BackendError::CircuitTooWide {
                circuit: circuit.num_qubits(),
                device: self.num_qubits(),
            }
        }
    }
}

impl Backend for BackendPool {
    fn name(&self) -> &str {
        &self.name
    }

    /// The widest member's capacity — what [`Backend::check`] admits
    /// (each member still enforces its own capacity at placement).
    fn num_qubits(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.num_qubits())
            .max()
            .unwrap_or(0)
    }

    /// A representative timing model: member 0's (instantaneous when the
    /// pool is empty). Per-member makespans are accounted exactly by the
    /// pool-aware engine path; this model only feeds coarse pre-run
    /// estimates (e.g. the `QA502` timeout lint).
    fn timing(&self) -> &TimingModel {
        self.members
            .first()
            .map(|m| m.timing())
            .unwrap_or(&self.fallback_timing)
    }

    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        self.check(circuit, shots)?;
        let jobs = [JobSpec::new(circuit, shots)];
        let placement = self.place(&jobs);
        match placement.assignment[0] {
            Some(m) => self.members[m].run(circuit, shots),
            None => Err(self.infeasible_error(circuit)),
        }
    }

    /// Kept in lockstep with [`Backend::run_batch_stats`], like every
    /// workspace backend.
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        self.run_batch_stats(jobs).results
    }

    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        self.run_sharded(jobs)
    }

    /// The *pool identity* fingerprint: every member's fingerprint folded
    /// in member order, plus a policy tag. This is deliberately not any
    /// single member's fingerprint — histograms gathered by a pool are a
    /// member mixture. The pipeline's pool-aware warm-cache path never
    /// uses it: it keys each node by the fingerprint of the member the
    /// placement assigns it to (see `qcut_core::pipeline`).
    fn cache_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(match &self.policy {
            PlacementPolicy::RoundRobin => 1,
            PlacementPolicy::LeastLoaded => 2,
            PlacementPolicy::NoiseAware => 3,
            PlacementPolicy::Pinned(_) => 4,
        });
        for m in &self.members {
            mix(m.cache_fingerprint());
        }
        h
    }

    /// Fault-prone when any member is.
    fn is_fault_prone(&self) -> bool {
        self.members.iter().any(|m| m.is_fault_prone())
    }

    /// Deterministic only when every member is (sharding and per-member
    /// seed streams are deterministic by construction, so the members are
    /// the only entropy source). An empty pool runs nothing and is
    /// vacuously deterministic.
    fn deterministic_seeding(&self) -> bool {
        self.members.iter().all(|m| m.deterministic_seeding())
    }

    /// The best (lowest) member score — the pool can always route a job
    /// to its cleanest feasible device.
    fn noise_score(&self) -> f64 {
        self.members
            .iter()
            .map(|m| m.noise_score())
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        if shots == 0 {
            return Err(BackendError::NoShots);
        }
        if self.members.is_empty() {
            return Err(BackendError::Unavailable);
        }
        if self.feasible_members(circuit.num_qubits()).is_empty() {
            return Err(self.infeasible_error(circuit));
        }
        Ok(())
    }

    fn as_pool(&self) -> Option<&BackendPool> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjectingBackend;
    use crate::ideal::IdealBackend;
    use crate::noisy::NoisyBackend;
    use qcut_sim::noise::NoiseModel;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    fn wide(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    fn homogeneous(n: usize, seed: u64) -> BackendPool {
        let mut pool = BackendPool::new(PlacementPolicy::RoundRobin);
        for _ in 0..n {
            pool = pool.with_backend(IdealBackend::new(seed));
        }
        pool
    }

    #[test]
    fn round_robin_cycles_and_respects_capacity() {
        let pool = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(IdealBackend::new(1).with_capacity(2))
            .with_backend(IdealBackend::new(2).with_capacity(8));
        let b = bell();
        let w = wide(5);
        let jobs = [
            JobSpec::new(&b, 10),
            JobSpec::new(&w, 10), // does not fit member 0
            JobSpec::new(&b, 10),
            JobSpec::new(&b, 10),
        ];
        let p = pool.place(&jobs);
        // Job 0 → member 0; job 1 skips member 1? No: cursor=1 and member
        // 1 fits, so job 1 → member 1; job 2 → member 0; job 3 → member 1.
        assert_eq!(p.assignment, vec![Some(0), Some(1), Some(0), Some(1)],);
        // A job nothing fits is infeasible, not misplaced.
        let giant = wide(9);
        let p = pool.place(&[JobSpec::new(&giant, 10)]);
        assert_eq!(p.assignment, vec![None]);
    }

    #[test]
    fn least_loaded_balances_predicted_makespan() {
        let pool = BackendPool::new(PlacementPolicy::LeastLoaded)
            .with_backend(IdealBackend::new(1).with_timing(TimingModel::ibm_like()))
            .with_backend(IdealBackend::new(2).with_timing(TimingModel::ibm_like()));
        let b = bell();
        // Four identical jobs must split 2/2, not pile onto one member.
        let jobs = [
            JobSpec::new(&b, 100),
            JobSpec::new(&b, 100),
            JobSpec::new(&b, 100),
            JobSpec::new(&b, 100),
        ];
        let p = pool.place(&jobs);
        assert_eq!(p.jobs_per_member(2), vec![2, 2]);
        let spread = (p.predicted_load[0] - p.predicted_load[1]).abs();
        assert!(spread < 1e-9, "balanced loads, got {:?}", p.predicted_load);
    }

    #[test]
    fn noise_aware_pins_wide_jobs_to_low_noise_members() {
        let noisy = NoisyBackend::new(
            "noisy_member",
            8,
            NoiseModel::depolarizing(0.02, 0.05, 0.03),
            TimingModel::instantaneous(),
            7,
        );
        let pool = BackendPool::new(PlacementPolicy::NoiseAware)
            .with_backend(noisy)
            .with_backend(IdealBackend::new(1).with_capacity(8));
        assert!(pool.member(0).noise_score() > pool.member(1).noise_score());
        let w = wide(6);
        let b = bell();
        let jobs = [
            JobSpec::new(&w, 10),
            JobSpec::new(&b, 10),
            JobSpec::new(&w, 10),
        ];
        let p = pool.place(&jobs);
        // Wide (noise-sensitive) jobs pin to the clean member (index 1).
        assert_eq!(p.assignment[0], Some(1));
        assert_eq!(p.assignment[2], Some(1));
        // The narrow job balances onto the idle noisy member.
        assert_eq!(p.assignment[1], Some(0));
    }

    #[test]
    fn noise_aware_capacity_beats_noise_preference() {
        // Only the noisy member fits the wide job: it must run there.
        let noisy = NoisyBackend::new(
            "big_noisy",
            8,
            NoiseModel::depolarizing(0.02, 0.05, 0.03),
            TimingModel::instantaneous(),
            7,
        );
        let pool = BackendPool::new(PlacementPolicy::NoiseAware)
            .with_backend(IdealBackend::new(1).with_capacity(2))
            .with_backend(noisy);
        let w = wide(6);
        let p = pool.place(&[JobSpec::new(&w, 10)]);
        assert_eq!(p.assignment, vec![Some(1)]);
    }

    #[test]
    fn noise_aware_homogeneous_degenerates_to_least_loaded() {
        let na = homogeneous(3, 5).with_policy(PlacementPolicy::NoiseAware);
        let ll = homogeneous(3, 5).with_policy(PlacementPolicy::LeastLoaded);
        let b = bell();
        let w = wide(4);
        let jobs = [
            JobSpec::new(&b, 50),
            JobSpec::new(&w, 50),
            JobSpec::new(&b, 50),
            JobSpec::new(&w, 50),
            JobSpec::new(&b, 50),
        ];
        assert_eq!(na.place(&jobs).assignment, ll.place(&jobs).assignment);
    }

    #[test]
    fn pinned_placement_is_explicit() {
        let pool = homogeneous(3, 1).with_policy(PlacementPolicy::Pinned(vec![2, 0]));
        let b = bell();
        let jobs = [
            JobSpec::new(&b, 10),
            JobSpec::new(&b, 10),
            JobSpec::new(&b, 10),
        ];
        let p = pool.place(&jobs);
        assert_eq!(p.assignment, vec![Some(2), Some(0), Some(2)]);
        // Out-of-range pins are infeasible, not wrapped.
        let bad = homogeneous(2, 1).with_policy(PlacementPolicy::Pinned(vec![5]));
        assert_eq!(bad.place(&jobs[..1]).assignment, vec![None]);
    }

    #[test]
    fn single_member_pool_batches_bit_identically_to_the_bare_backend() {
        let bare = IdealBackend::new(42);
        let pool =
            BackendPool::new(PlacementPolicy::LeastLoaded).with_backend(IdealBackend::new(42));
        let b = bell();
        let g = wide(3);
        let jobs = [
            JobSpec::new(&b, 400),
            JobSpec::new(&g, 300),
            JobSpec::new(&b, 200),
        ];
        let bare_run = bare.run_batch_stats(&jobs);
        let pool_run = pool.run_batch_stats(&jobs);
        for (a, b) in bare_run.results.iter().zip(&pool_run.results) {
            assert_eq!(
                a.as_ref().unwrap().counts,
                b.as_ref().unwrap().counts,
                "a single-member pool must submit the identical batch"
            );
        }
        assert_eq!(bare_run.stats, pool_run.stats);
    }

    #[test]
    fn pool_facade_reports_identity_correctly() {
        let pool = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(IdealBackend::new(1).with_capacity(4))
            .with_backend(
                FaultInjectingBackend::new(IdealBackend::new(2).with_capacity(8)).fail_first(1),
            );
        assert_eq!(pool.num_qubits(), 8);
        assert!(pool.is_fault_prone());
        assert!(pool.deterministic_seeding());
        assert!(pool.as_pool().is_some());
        assert_eq!(pool.member_info().len(), 2);
        // Capacity check admits what the widest member fits.
        assert!(pool.check(&wide(8), 10).is_ok());
        assert!(matches!(
            pool.check(&wide(9), 10),
            Err(BackendError::CircuitTooWide { device: 8, .. })
        ));
        // Pools with different member sets fingerprint apart.
        let other = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(IdealBackend::new(1).with_capacity(4));
        assert_ne!(pool.cache_fingerprint(), other.cache_fingerprint());
    }

    #[test]
    fn empty_pool_rejects_work_instead_of_panicking() {
        let pool = BackendPool::new(PlacementPolicy::RoundRobin);
        assert_eq!(pool.num_qubits(), 0);
        assert_eq!(
            pool.run(&bell(), 10).unwrap_err(),
            BackendError::Unavailable
        );
        let b = bell();
        let run = pool.run_batch_stats(&[JobSpec::new(&b, 10)]);
        assert!(matches!(run.results[0], Err(BackendError::Unavailable)));
    }

    #[test]
    fn failover_sibling_walks_cyclically_and_respects_capacity() {
        let pool = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(IdealBackend::new(1).with_capacity(8))
            .with_backend(IdealBackend::new(2).with_capacity(2))
            .with_backend(IdealBackend::new(3).with_capacity(8));
        assert_eq!(pool.failover_sibling(0, 5), Some(2));
        assert_eq!(pool.failover_sibling(2, 5), Some(0));
        assert_eq!(pool.failover_sibling(0, 2), Some(1));
        // No sibling fits: single-member pools have nowhere to fail over.
        let solo = homogeneous(1, 1);
        assert_eq!(solo.failover_sibling(0, 2), None);
    }
}
