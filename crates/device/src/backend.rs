//! The backend abstraction: anything that can run a circuit for a number
//! of shots and return counts.
//!
//! Two implementations ship with the workspace: [`crate::ideal::IdealBackend`]
//! (the Aer-simulator stand-in) and [`crate::noisy::NoisyBackend`] (the
//! simulated IBM device). Backends are `Sync` so fragment tomography can
//! fan out over a rayon pool.

use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::Counts;
use rayon::prelude::*;
use std::fmt;
use std::time::Duration;

/// One batchable unit of work: a circuit and its shot budget. The batched
/// entry point [`Backend::run_batch`] consumes a slice of these; the
/// `qcut-core` JobGraph engine is the main producer. Borrows its circuit
/// so batch submission never copies the (potentially matrix-laden)
/// instruction stream.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec<'a> {
    /// Circuit to execute.
    pub circuit: &'a Circuit,
    /// Number of shots.
    pub shots: u64,
}

impl<'a> JobSpec<'a> {
    /// Creates a job spec.
    pub fn new(circuit: &'a Circuit, shots: u64) -> Self {
        JobSpec { circuit, shots }
    }
}

/// Per-job outcome of a batched run.
pub type JobResult = Result<ExecutionResult, BackendError>;

/// Result of one circuit execution.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Measured bitstring histogram (all qubits, computational basis).
    pub counts: Counts,
    /// *Simulated* device occupation time — what a real device would have
    /// spent on this job according to the backend's [`TimingModel`]. This
    /// is the quantity behind the paper's Fig. 5 wall-times.
    pub simulated_duration: Duration,
    /// Actual host CPU time spent simulating.
    pub host_duration: Duration,
}

/// Errors a backend can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The circuit does not fit on the device.
    CircuitTooWide {
        /// Requested width.
        circuit: usize,
        /// Device capacity.
        device: usize,
    },
    /// Zero shots requested.
    NoShots,
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::CircuitTooWide { circuit, device } => write!(
                f,
                "circuit needs {circuit} qubits but the device has only {device} \
                 (this is exactly the situation circuit cutting addresses)"
            ),
            BackendError::NoShots => write!(f, "shots must be positive"),
        }
    }
}

impl std::error::Error for BackendError {}

/// SplitMix64-style mixing of (backend seed, job index) into a per-job
/// sub-seed. Shared by the seed-deterministic backends so the
/// batched-equals-sequential parity can never drift between them.
pub fn mix_seed(seed: u64, job: u64) -> u64 {
    let mut z = seed ^ job.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Shared native-batch driver: reserves one contiguous block of job
/// indices from `counter`, then fans the jobs out over the rayon pool with
/// their *batch-position* index — so per-job seeds are deterministic under
/// any thread interleaving and identical to running the jobs one by one
/// (each `run` drawing the counter in order).
pub(crate) fn run_batch_indexed<F>(
    counter: &std::sync::atomic::AtomicU64,
    jobs: &[JobSpec<'_>],
    run: F,
) -> Vec<JobResult>
where
    F: Fn(JobSpec<'_>, u64) -> JobResult + Sync,
{
    let base = counter.fetch_add(jobs.len() as u64, std::sync::atomic::Ordering::Relaxed);
    (base..base + jobs.len() as u64)
        .into_par_iter()
        .zip(jobs.par_iter())
        .map(|(idx, &job)| run(job, idx))
        .collect()
}

/// A quantum execution backend.
pub trait Backend: Sync {
    /// Human-readable backend name.
    fn name(&self) -> &str;

    /// Device qubit capacity.
    fn num_qubits(&self) -> usize;

    /// The backend's timing model (used to account simulated wall time).
    fn timing(&self) -> &TimingModel;

    /// Runs `circuit` for `shots` shots, measuring every qubit in the
    /// computational basis.
    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError>;

    /// Runs a whole batch of jobs in one submission, returning one result
    /// per job in submission order.
    ///
    /// The default implementation fans the jobs out over the rayon pool
    /// (the trait is `Sync`), so any backend gets parallel batching for
    /// free. The workspace backends ([`crate::ideal::IdealBackend`],
    /// [`crate::noisy::NoisyBackend`]) override it to additionally assign
    /// per-job RNG streams by *batch index*, making their batched runs
    /// bit-identical to a sequential loop over [`Backend::run`] on an
    /// equally-seeded backend — the property the pipeline's
    /// batched-vs-sequential equivalence tests rely on. Backends whose
    /// `run` draws from shared mutable RNG state should override this the
    /// same way if they need that determinism.
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        jobs.par_iter()
            .map(|j| self.run(j.circuit, j.shots))
            .collect()
    }

    /// Validates a job without running it.
    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        if circuit.num_qubits() > self.num_qubits() {
            return Err(BackendError::CircuitTooWide {
                circuit: circuit.num_qubits(),
                device: self.num_qubits(),
            });
        }
        if shots == 0 {
            return Err(BackendError::NoShots);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_sizes() {
        let e = BackendError::CircuitTooWide {
            circuit: 9,
            device: 5,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('5'));
        assert!(BackendError::NoShots.to_string().contains("positive"));
    }
}
