//! The backend abstraction: anything that can run a circuit for a number
//! of shots and return counts.
//!
//! Two implementations ship with the workspace: [`crate::ideal::IdealBackend`]
//! (the Aer-simulator stand-in) and [`crate::noisy::NoisyBackend`] (the
//! simulated IBM device). Backends are `Sync` so fragment tomography can
//! fan out over a rayon pool.

use crate::pool::BackendPool;
use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::{CdfTable, Counts};
use qcut_sim::prefix::{ForkState, ForkStateCache, PrefixForest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::fmt;
use std::time::{Duration, Instant};

/// One batchable unit of work: a circuit and its shot budget. The batched
/// entry point [`Backend::run_batch`] consumes a slice of these; the
/// `qcut-core` JobGraph engine is the main producer. Borrows its circuit
/// so batch submission never copies the (potentially matrix-laden)
/// instruction stream.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec<'a> {
    /// Circuit to execute.
    pub circuit: &'a Circuit,
    /// Number of shots.
    pub shots: u64,
}

impl<'a> JobSpec<'a> {
    /// Creates a job spec.
    pub fn new(circuit: &'a Circuit, shots: u64) -> Self {
        JobSpec { circuit, shots }
    }
}

/// Per-job outcome of a batched run.
pub type JobResult = Result<ExecutionResult, BackendError>;

/// Classical-simulation accounting for one batched submission. The gate
/// counters expose what prefix sharing saved: a non-sharing backend always
/// reports `gates_applied == gates_naive`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Gate applications the backend actually performed simulating the
    /// batch (shared prefixes counted once).
    pub gates_applied: u64,
    /// Gate applications a per-job simulation would have performed
    /// (`Σ len(circuit)` over valid jobs).
    pub gates_naive: u64,
    /// Prefix-forest trie nodes (0 when sharing is off or not supported).
    pub prefix_nodes: u64,
    /// Distinct final states sampled from — one CDF table is built per
    /// unique state and reused by every job ending there.
    pub unique_states: u64,
    /// Trie segments whose end state was served from a warm-start
    /// fork-state cache instead of being re-simulated (tier 2; 0 when the
    /// backend has no state cache attached).
    pub states_reused: u64,
}

impl BatchStats {
    /// The accounting of a backend that simulated every job of `results`
    /// independently. Failed jobs were never simulated, so only successful
    /// ones contribute gates and states — mirroring the prefix-sharing
    /// path, which excludes invalid jobs from its forest.
    pub fn unshared(jobs: &[JobSpec<'_>], results: &[JobResult]) -> Self {
        let gates: u64 = jobs
            .iter()
            .zip(results)
            .filter(|(_, r)| r.is_ok())
            .map(|(j, _)| j.circuit.len() as u64)
            .sum();
        BatchStats {
            gates_applied: gates,
            gates_naive: gates,
            prefix_nodes: 0,
            unique_states: results.iter().filter(|r| r.is_ok()).count() as u64,
            states_reused: 0,
        }
    }

    /// Gate applications eliminated by prefix sharing.
    pub fn gates_saved(&self) -> u64 {
        self.gates_naive - self.gates_applied
    }

    /// Folds another batch's accounting into this one.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.gates_applied += other.gates_applied;
        self.gates_naive += other.gates_naive;
        self.prefix_nodes += other.prefix_nodes;
        self.unique_states += other.unique_states;
        self.states_reused += other.states_reused;
    }
}

/// Results plus accounting of one batched submission.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-job outcomes in submission order.
    pub results: Vec<JobResult>,
    /// Simulation-cost accounting for the whole batch.
    pub stats: BatchStats,
}

/// Result of one circuit execution.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Measured bitstring histogram (all qubits, computational basis).
    pub counts: Counts,
    /// *Simulated* device occupation time — what a real device would have
    /// spent on this job according to the backend's [`TimingModel`]. This
    /// is the quantity behind the paper's Fig. 5 wall-times.
    pub simulated_duration: Duration,
    /// Actual host CPU time spent simulating.
    pub host_duration: Duration,
}

/// What kind of transient fault a backend reported. Real fleets surface
/// these as HTTP 429/5xx, queue evictions, or mid-job recalibrations; the
/// vocabulary here is deliberately coarse — the retry engine only needs to
/// know the failure is worth re-submitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// The service rejected the submission under load (retry after backoff).
    Throttled,
    /// The submission was lost in transit (network partition, dropped job).
    Network,
    /// The device went into recalibration mid-queue and evicted the job.
    Calibration,
}

impl fmt::Display for TransientKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientKind::Throttled => write!(f, "throttled"),
            TransientKind::Network => write!(f, "network"),
            TransientKind::Calibration => write!(f, "calibration"),
        }
    }
}

/// Errors a backend can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The circuit does not fit on the device.
    CircuitTooWide {
        /// Requested width.
        circuit: usize,
        /// Device capacity.
        device: usize,
    },
    /// Zero shots requested.
    NoShots,
    /// A transient fault: the job failed for a reason that does not
    /// implicate the job itself, so re-submitting it may succeed.
    Transient {
        /// What failed.
        kind: TransientKind,
        /// Which delivery attempt this was (1-based, as counted by the
        /// failing backend).
        attempt: u32,
    },
    /// The job ran longer than the caller's per-job deadline. `elapsed` is
    /// *simulated* device time (from the backend's [`TimingModel`]), so
    /// timeout behaviour is deterministic and wall-clock-free in tests.
    Timeout {
        /// Simulated time the job had consumed when the deadline passed.
        elapsed: Duration,
    },
    /// The backend is (temporarily) not accepting work at all.
    Unavailable,
}

impl BackendError {
    /// True for failures worth re-submitting: the job itself is fine, the
    /// delivery failed. `CircuitTooWide` and `NoShots` are deterministic
    /// misconfigurations — retrying them can only fail identically.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            BackendError::Transient { .. }
                | BackendError::Timeout { .. }
                | BackendError::Unavailable
        )
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::CircuitTooWide { circuit, device } => write!(
                f,
                "circuit needs {circuit} qubits but the device has only {device} \
                 (this is exactly the situation circuit cutting addresses)"
            ),
            BackendError::NoShots => write!(f, "shots must be positive"),
            BackendError::Transient { kind, attempt } => {
                write!(f, "transient {kind} fault on attempt {attempt}")
            }
            BackendError::Timeout { elapsed } => write!(
                f,
                "job exceeded its per-job timeout after {:.3} s of simulated device time",
                elapsed.as_secs_f64()
            ),
            BackendError::Unavailable => write!(f, "backend is not accepting work"),
        }
    }
}

impl std::error::Error for BackendError {}

/// SplitMix64-style mixing of (backend seed, job index) into a per-job
/// sub-seed. Shared by the seed-deterministic backends so the
/// batched-equals-sequential parity can never drift between them.
pub fn mix_seed(seed: u64, job: u64) -> u64 {
    let mut z = seed ^ job.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Shared native-batch driver: reserves one contiguous block of job
/// indices from `counter`, then fans the jobs out over the rayon pool with
/// their *batch-position* index — so per-job seeds are deterministic under
/// any thread interleaving and identical to running the jobs one by one
/// (each `run` drawing the counter in order).
pub(crate) fn run_batch_indexed<F>(
    counter: &std::sync::atomic::AtomicU64,
    jobs: &[JobSpec<'_>],
    run: F,
) -> Vec<JobResult>
where
    F: Fn(JobSpec<'_>, u64) -> JobResult + Sync,
{
    let base = counter.fetch_add(jobs.len() as u64, std::sync::atomic::Ordering::Relaxed);
    (base..base + jobs.len() as u64)
        .into_par_iter()
        .zip(jobs.par_iter())
        .map(|(idx, &job)| run(job, idx))
        .collect()
}

/// Shared prefix-sharing batch driver for the seed-deterministic
/// simulator backends: reserves one contiguous block of job indices from
/// `counter` (so per-job seeds are assigned by *batch position*, exactly
/// like [`run_batch_indexed`] and a sequential loop over `run`), validates
/// each job with `check`, then simulates the valid circuits through one
/// [`PrefixForest`] — every shared instruction prefix evolves once, the
/// state forks at branch points, and each node terminating ≥1 job builds a
/// single [`CdfTable`] from `finalize(state)` that all its jobs sample
/// through with their own position-seeded RNG stream. Bit-identical to
/// per-job simulation because forking is a bit-exact clone and the
/// instruction application order per job is unchanged.
///
/// Per-job `simulated_duration` stays the full per-variant device time
/// (prefix sharing is a *classical simulation* economy; a real device
/// still runs every variant), while host time — which sharing genuinely
/// shrinks — is measured for the whole batch and amortised equally over
/// the successful jobs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch_forest<S, I, P>(
    counter: &std::sync::atomic::AtomicU64,
    seed: u64,
    jobs: &[JobSpec<'_>],
    check: impl Fn(&Circuit, u64) -> Result<(), BackendError>,
    init: I,
    finalize: P,
    timing: &TimingModel,
    reuse: Option<&std::sync::Mutex<ForkStateCache<S>>>,
) -> BatchRun
where
    S: ForkState,
    I: Fn(usize) -> S + Sync,
    P: Fn(&S) -> Vec<f64> + Sync,
{
    let started = Instant::now();
    let base = counter.fetch_add(jobs.len() as u64, std::sync::atomic::Ordering::Relaxed);
    let mut results: Vec<Option<JobResult>> = jobs
        .iter()
        .map(|j| check(j.circuit, j.shots).err().map(Err))
        .collect();
    let valid: Vec<usize> = (0..jobs.len()).filter(|&i| results[i].is_none()).collect();
    let circuits: Vec<&Circuit> = valid.iter().map(|&i| jobs[i].circuit).collect();

    let forest = PrefixForest::build(&circuits);
    let visit = |state: &S, members: &[usize]| {
        let width = circuits[members[0]].num_qubits();
        let cdf = CdfTable::from_probs(width, &finalize(state));
        members
            .iter()
            .map(|&m| {
                let job = valid[m];
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, base + job as u64));
                cdf.sample(jobs[job].shots, &mut rng)
            })
            .collect()
    };
    // The warm tier-2 path swaps `simulate_with` for the reuse-aware walk;
    // cached states are bit-identical to re-simulated ones (confirmed
    // prefix equality + deterministic evolution), so the sampled counts —
    // still seeded purely by batch position — cannot differ between the
    // two paths.
    let (sampled, reuse_stats): (Vec<Counts>, _) = match reuse {
        Some(cache) => forest.simulate_with_reuse(&init, visit, cache),
        None => (
            forest.simulate_with(&init, visit),
            qcut_sim::prefix::ReuseStats::default(),
        ),
    };
    let stats = BatchStats {
        gates_applied: forest.gates_shared() - reuse_stats.gates_skipped,
        gates_naive: forest.gates_naive(),
        prefix_nodes: forest.num_nodes() as u64,
        unique_states: forest.num_terminal_nodes() as u64,
        states_reused: reuse_stats.states_reused,
    };

    let host_share = started
        .elapsed()
        .checked_div(valid.len().max(1) as u32)
        .unwrap_or_default();
    for (m, counts) in sampled.into_iter().enumerate() {
        let job = valid[m];
        results[job] = Some(Ok(ExecutionResult {
            counts,
            simulated_duration: timing.job_duration_as_duration(jobs[job].circuit, jobs[job].shots),
            host_duration: host_share,
        }));
    }
    BatchRun {
        results: results
            .into_iter()
            .map(|r| r.expect("every job resolved to a result"))
            .collect(),
        stats,
    }
}

/// A quantum execution backend.
pub trait Backend: Sync {
    /// Human-readable backend name.
    fn name(&self) -> &str;

    /// Device qubit capacity.
    fn num_qubits(&self) -> usize;

    /// The backend's timing model (used to account simulated wall time).
    fn timing(&self) -> &TimingModel;

    /// Runs `circuit` for `shots` shots, measuring every qubit in the
    /// computational basis.
    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError>;

    /// Runs a whole batch of jobs in one submission, returning one result
    /// per job in submission order.
    ///
    /// The default implementation fans the jobs out over the rayon pool
    /// (the trait is `Sync`), so any backend gets parallel batching for
    /// free. Backends whose `run` draws from shared mutable RNG state
    /// should override this to assign per-job streams by *batch index* if
    /// they need batched-equals-sequential determinism. A backend that
    /// overrides [`Backend::run_batch_stats`] (the richer entry point the
    /// engine calls) must override this one to delegate to it, as the
    /// workspace backends do — the two must never diverge.
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        jobs.par_iter()
            .map(|j| self.run(j.circuit, j.shots))
            .collect()
    }

    /// Runs a whole batch of jobs in one submission, returning one result
    /// per job in submission order plus [`BatchStats`] accounting.
    ///
    /// The default implementation delegates to [`Backend::run_batch`] with
    /// per-job (non-sharing) accounting, so backends that customise only
    /// `run_batch` keep their behaviour. The workspace backends
    /// ([`crate::ideal::IdealBackend`], [`crate::noisy::NoisyBackend`])
    /// override this method to (a) assign per-job RNG streams by *batch
    /// index*, making their batched runs bit-identical to a sequential
    /// loop over [`Backend::run`] on an equally-seeded backend — the
    /// property the pipeline's batched-vs-sequential equivalence tests
    /// rely on — and (b) route the batch through a
    /// [`qcut_sim::prefix::PrefixForest`] so shared circuit prefixes are
    /// simulated once per batch (and mirror `run_batch` to this method).
    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        let results = self.run_batch(jobs);
        let stats = BatchStats::unshared(jobs, &results);
        BatchRun { results, stats }
    }

    /// A stable fingerprint of everything that makes this backend's
    /// histograms statistically poolable with another run's: device
    /// identity, capacity, and noise character — but *not* the RNG seed
    /// (samples drawn under different seeds from the same device model are
    /// exchangeable). The warm-start cache folds this into every histogram
    /// key, so e.g. an ideal backend's measurements are never served to a
    /// noisy run.
    ///
    /// The default hashes the backend's name and capacity; backends with
    /// configurable noise must override to include it (the workspace's
    /// `NoisyBackend` folds in `NoiseModel::fingerprint`).
    fn cache_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.name().bytes() {
            mix(b);
        }
        for b in (self.num_qubits() as u64).to_le_bytes() {
            mix(b);
        }
        h
    }

    /// True when the backend is expected to raise transient faults
    /// ([`BackendError::is_transient`]) during normal operation — real
    /// cloud devices, or a [`crate::fault::FaultInjectingBackend`] with a
    /// fault schedule configured. Lint QA501 warns when such a backend is
    /// driven with retries disabled. Defaults to `false` (the workspace
    /// simulators never fail transiently).
    fn is_fault_prone(&self) -> bool {
        false
    }

    /// True when the backend assigns per-job RNG streams deterministically
    /// (by seed and batch position), so equal requests reproduce equal
    /// histograms. The warm-start cache works with either answer, but
    /// reproducible warm-vs-cold comparisons need determinism, so lint
    /// QA401 warns when caching is enabled over a backend that does not
    /// claim it. Defaults to `false` (unknown third-party backends).
    fn deterministic_seeding(&self) -> bool {
        false
    }

    /// A scalar noise figure of merit for placement: 0.0 means ideal,
    /// larger means noisier. [`crate::pool::PlacementPolicy::NoiseAware`]
    /// uses it to pin noise-sensitive wide fragments to the cleanest
    /// members. The scale is only compared *within* one pool, so any
    /// monotone measure works; the workspace's `NoisyBackend` reports the
    /// total-variation distance its noise model inflicts on a Bell-state
    /// probe. Defaults to `0.0` (noiseless).
    fn noise_score(&self) -> f64 {
        0.0
    }

    /// Downcast seam for the engine: a [`crate::pool::BackendPool`]
    /// returns `Some(self)` so the JobGraph execute path can route pooled
    /// backends through its sharding/failover engine while every other
    /// backend takes the single-device path. Defaults to `None`.
    fn as_pool(&self) -> Option<&BackendPool> {
        None
    }

    /// Validates a job without running it.
    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        if circuit.num_qubits() > self.num_qubits() {
            return Err(BackendError::CircuitTooWide {
                circuit: circuit.num_qubits(),
                device: self.num_qubits(),
            });
        }
        if shots == 0 {
            return Err(BackendError::NoShots);
        }
        Ok(())
    }
}

/// Full delegation for borrowed backends. Without this, a `&B` passed
/// where an `impl Backend` is expected would re-derive every *default*
/// method body — most damagingly `run_batch_stats`, which would silently
/// replace the inner backend's prefix-sharing accounting (and
/// batch-position seeding guarantees) with the naive fallback.
impl<B: Backend + ?Sized> Backend for &B {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_qubits(&self) -> usize {
        (**self).num_qubits()
    }
    fn timing(&self) -> &TimingModel {
        (**self).timing()
    }
    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        (**self).run(circuit, shots)
    }
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        (**self).run_batch(jobs)
    }
    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        (**self).run_batch_stats(jobs)
    }
    fn cache_fingerprint(&self) -> u64 {
        (**self).cache_fingerprint()
    }
    fn is_fault_prone(&self) -> bool {
        (**self).is_fault_prone()
    }
    fn deterministic_seeding(&self) -> bool {
        (**self).deterministic_seeding()
    }
    fn noise_score(&self) -> f64 {
        (**self).noise_score()
    }
    fn as_pool(&self) -> Option<&BackendPool> {
        (**self).as_pool()
    }
    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        (**self).check(circuit, shots)
    }
}

/// Full delegation for owned trait objects — what [`crate::pool::
/// BackendPool`] members are. The latent gap this closes: `Box<dyn
/// Backend>` previously had no `Backend` impl at all, so generic wrappers
/// had to deref manually, and any blanket impl that forwarded only the
/// required methods would have dropped `run_batch_stats` down to the
/// stats-losing default (see `boxed_member_keeps_prefix_sharing_stats`).
impl<B: Backend + ?Sized> Backend for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_qubits(&self) -> usize {
        (**self).num_qubits()
    }
    fn timing(&self) -> &TimingModel {
        (**self).timing()
    }
    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError> {
        (**self).run(circuit, shots)
    }
    fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
        (**self).run_batch(jobs)
    }
    fn run_batch_stats(&self, jobs: &[JobSpec<'_>]) -> BatchRun {
        (**self).run_batch_stats(jobs)
    }
    fn cache_fingerprint(&self) -> u64 {
        (**self).cache_fingerprint()
    }
    fn is_fault_prone(&self) -> bool {
        (**self).is_fault_prone()
    }
    fn deterministic_seeding(&self) -> bool {
        (**self).deterministic_seeding()
    }
    fn noise_score(&self) -> f64 {
        (**self).noise_score()
    }
    fn as_pool(&self) -> Option<&BackendPool> {
        (**self).as_pool()
    }
    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        (**self).check(circuit, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A third-party-style backend that customises batching solely via
    /// `run_batch` (the PR 2 extension point): it tags every job's counts
    /// with a fixed outcome so delegation is observable.
    struct RunBatchOnly {
        timing: TimingModel,
    }

    impl Backend for RunBatchOnly {
        fn name(&self) -> &str {
            "run_batch_only"
        }
        fn num_qubits(&self) -> usize {
            4
        }
        fn timing(&self) -> &TimingModel {
            &self.timing
        }
        fn run(&self, _circuit: &Circuit, _shots: u64) -> Result<ExecutionResult, BackendError> {
            panic!("this backend only serves batches");
        }
        fn run_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<JobResult> {
            jobs.iter()
                .map(|j| {
                    let mut counts = Counts::new(j.circuit.num_qubits());
                    counts.record_many(0, j.shots);
                    Ok(ExecutionResult {
                        counts,
                        simulated_duration: Duration::ZERO,
                        host_duration: Duration::ZERO,
                    })
                })
                .collect()
        }
    }

    #[test]
    fn default_run_batch_stats_honours_a_run_batch_override() {
        // The engine calls run_batch_stats; a backend that overrode only
        // run_batch must still be routed through its override.
        let backend = RunBatchOnly {
            timing: TimingModel::instantaneous(),
        };
        let mut c = Circuit::new(2);
        c.h(0);
        let jobs = [JobSpec::new(&c, 7)];
        let run = backend.run_batch_stats(&jobs);
        assert_eq!(run.results[0].as_ref().unwrap().counts.get(0), 7);
        assert_eq!(run.stats.gates_applied, run.stats.gates_naive);
        assert_eq!(run.stats.unique_states, 1);
    }

    #[test]
    fn boxed_member_keeps_prefix_sharing_stats() {
        // The latent-gap regression: wrapping a prefix-sharing backend in
        // a Box (as pool members are) must preserve run_batch_stats —
        // gate-saving accounting, batch-position seeding, and all. A
        // delegation that fell back to the trait default would report
        // gates_applied == gates_naive here.
        use crate::ideal::IdealBackend;
        let mut base = Circuit::new(3);
        base.h(0).cx(0, 1).ry(0.3, 2).cx(1, 2);
        let mut variant = base.clone();
        variant.h(2);
        let jobs = [JobSpec::new(&base, 300), JobSpec::new(&variant, 300)];

        let bare = IdealBackend::new(11);
        let boxed: Box<dyn Backend> = Box::new(IdealBackend::new(11));
        let borrowed_backend = IdealBackend::new(11);
        let borrowed: &dyn Backend = &borrowed_backend;

        let want = bare.run_batch_stats(&jobs);
        assert!(
            want.stats.gates_saved() > 0,
            "workload must exercise prefix sharing"
        );
        for (label, got) in [
            ("Box<dyn Backend>", boxed.run_batch_stats(&jobs)),
            ("&dyn Backend", borrowed.run_batch_stats(&jobs)),
        ] {
            assert_eq!(got.stats, want.stats, "{label} lost batch accounting");
            for (a, b) in want.results.iter().zip(&got.results) {
                assert_eq!(
                    a.as_ref().unwrap().counts,
                    b.as_ref().unwrap().counts,
                    "{label} changed sampled counts"
                );
            }
        }
        // Identity methods delegate too.
        assert_eq!(boxed.cache_fingerprint(), bare.cache_fingerprint());
        assert!(boxed.deterministic_seeding());
        assert!(boxed.as_pool().is_none());
    }

    #[test]
    fn error_messages_mention_sizes() {
        let e = BackendError::CircuitTooWide {
            circuit: 9,
            device: 5,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('5'));
        assert!(BackendError::NoShots.to_string().contains("positive"));
    }
}
