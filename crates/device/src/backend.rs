//! The backend abstraction: anything that can run a circuit for a number
//! of shots and return counts.
//!
//! Two implementations ship with the workspace: [`crate::ideal::IdealBackend`]
//! (the Aer-simulator stand-in) and [`crate::noisy::NoisyBackend`] (the
//! simulated IBM device). Backends are `Sync` so fragment tomography can
//! fan out over a rayon pool.

use crate::timing::TimingModel;
use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::Counts;
use std::fmt;
use std::time::Duration;

/// Result of one circuit execution.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Measured bitstring histogram (all qubits, computational basis).
    pub counts: Counts,
    /// *Simulated* device occupation time — what a real device would have
    /// spent on this job according to the backend's [`TimingModel`]. This
    /// is the quantity behind the paper's Fig. 5 wall-times.
    pub simulated_duration: Duration,
    /// Actual host CPU time spent simulating.
    pub host_duration: Duration,
}

/// Errors a backend can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The circuit does not fit on the device.
    CircuitTooWide {
        /// Requested width.
        circuit: usize,
        /// Device capacity.
        device: usize,
    },
    /// Zero shots requested.
    NoShots,
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::CircuitTooWide { circuit, device } => write!(
                f,
                "circuit needs {circuit} qubits but the device has only {device} \
                 (this is exactly the situation circuit cutting addresses)"
            ),
            BackendError::NoShots => write!(f, "shots must be positive"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A quantum execution backend.
pub trait Backend: Sync {
    /// Human-readable backend name.
    fn name(&self) -> &str;

    /// Device qubit capacity.
    fn num_qubits(&self) -> usize;

    /// The backend's timing model (used to account simulated wall time).
    fn timing(&self) -> &TimingModel;

    /// Runs `circuit` for `shots` shots, measuring every qubit in the
    /// computational basis.
    fn run(&self, circuit: &Circuit, shots: u64) -> Result<ExecutionResult, BackendError>;

    /// Validates a job without running it.
    fn check(&self, circuit: &Circuit, shots: u64) -> Result<(), BackendError> {
        if circuit.num_qubits() > self.num_qubits() {
            return Err(BackendError::CircuitTooWide {
                circuit: circuit.num_qubits(),
                device: self.num_qubits(),
            });
        }
        if shots == 0 {
            return Err(BackendError::NoShots);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_sizes() {
        let e = BackendError::CircuitTooWide {
            circuit: 9,
            device: 5,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('5'));
        assert!(BackendError::NoShots.to_string().contains("positive"));
    }
}
