//! Device presets mirroring the paper's experimental platforms.
//!
//! The paper runs on a 5-qubit and a 7-qubit IBM superconducting device
//! (Falcon-class, e.g. ibmq_lima / ibm_casablanca generation) plus the Aer
//! simulator. The noise parameters below sit in the publicly documented
//! range for those machines (1q error ~3×10⁻⁴, CX error ~1×10⁻², readout
//! ~2×10⁻², T1/T2 ~100 μs); exact per-calibration values are irrelevant —
//! Fig. 3 only needs "a noisy device", and Fig. 5 only needs the timing
//! model.

use crate::ideal::IdealBackend;
use crate::noisy::NoisyBackend;
use crate::timing::TimingModel;
use qcut_sim::noise::{KrausChannel, NoiseModel, ReadoutError, ThermalSpec};

/// The Aer-simulator stand-in: noiseless state-vector sampling.
pub fn aer_like(seed: u64) -> IdealBackend {
    IdealBackend::new(seed)
}

/// Shared Falcon-class noise model.
fn ibm_like_noise() -> NoiseModel {
    NoiseModel {
        one_qubit: Some(KrausChannel::depolarizing(3e-4)),
        two_qubit: Some(KrausChannel::depolarizing_two(1e-2)),
        thermal: Some(ThermalSpec {
            t1: 100e-6,
            t2: 80e-6,
            time_1q: 35e-9,
            time_2q: 300e-9,
        }),
        readout: ReadoutError {
            p01: 0.015,
            p10: 0.03,
        },
    }
}

/// A 5-qubit IBM-like device (the paper's smaller platform; runs the
/// 5-qubit circuit and its two 3-qubit fragments).
pub fn ibm_5q(seed: u64) -> NoisyBackend {
    NoisyBackend::new(
        "ibm_like_5q",
        5,
        ibm_like_noise(),
        TimingModel::ibm_like(),
        seed,
    )
}

/// A 7-qubit IBM-like device (the paper's larger platform; runs the
/// 7-qubit circuit and its two 4-qubit fragments).
pub fn ibm_7q(seed: u64) -> NoisyBackend {
    NoisyBackend::new(
        "ibm_like_7q",
        7,
        ibm_like_noise(),
        TimingModel::ibm_like(),
        seed,
    )
}

/// A deliberately very noisy device for stress tests.
pub fn very_noisy(seed: u64) -> NoisyBackend {
    NoisyBackend::new(
        "very_noisy",
        8,
        NoiseModel::depolarizing(0.01, 0.08, 0.05),
        TimingModel::ibm_like(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use qcut_circuit::circuit::Circuit;

    #[test]
    fn preset_capacities_match_paper_devices() {
        assert_eq!(ibm_5q(0).num_qubits(), 5);
        assert_eq!(ibm_7q(0).num_qubits(), 7);
    }

    #[test]
    fn five_qubit_device_cannot_run_seven_qubit_circuit() {
        // The motivating scenario for cutting.
        let b = ibm_5q(0);
        let mut c = Circuit::new(7);
        c.h(0);
        assert!(b.run(&c, 10).is_err());
    }

    #[test]
    fn noisier_preset_is_noisier() {
        use crate::noisy::{ideal_probabilities, tvd};
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mild = ibm_5q(0).exact_probabilities(&c);
        let harsh = very_noisy(0).exact_probabilities(&c);
        let ideal = ideal_probabilities(&c);
        assert!(tvd(&harsh, &ideal) > tvd(&mild, &ideal));
    }

    #[test]
    fn presets_run_the_paper_circuit_sizes() {
        use qcut_circuit::ansatz::GoldenAnsatz;
        let (c5, _) = GoldenAnsatz::new(5, 1).build();
        let r = ibm_5q(1).run(&c5, 100).unwrap();
        assert_eq!(r.counts.total(), 100);
        let (c7, _) = GoldenAnsatz::new(7, 1).build();
        let r7 = ibm_7q(1).run(&c7, 100).unwrap();
        assert_eq!(r7.counts.total(), 100);
    }
}
