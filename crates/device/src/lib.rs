//! # qcut-device
//!
//! Simulated quantum execution backends for the `qcut` workspace:
//!
//! * [`backend::Backend`] — the execution trait (run a circuit — or a whole
//!   batch of [`backend::JobSpec`]s in one submission — and get counts plus
//!   simulated device time);
//! * [`ideal::IdealBackend`] — noiseless state-vector backend (the paper's
//!   Aer simulator \[27\]);
//! * [`noisy::NoisyBackend`] — density-matrix backend with depolarizing +
//!   thermal + readout noise and an IBM-like timing model (the substitute
//!   for the paper's 5- and 7-qubit IBM devices \[28\], see DESIGN.md §4);
//! * [`fault::FaultInjectingBackend`] — deterministic fault-injection
//!   wrapper (seeded failure schedules, injected latency, corrupt counts)
//!   for exercising the retry and degradation machinery;
//! * [`pool::BackendPool`] — multi-backend sharding: a set of heterogeneous
//!   members behind one `Backend` facade, with capacity- and noise-aware
//!   placement policies (round-robin, least-loaded makespan balancing,
//!   noise-aware tiering) and failover-sibling lookup for the retry engine;
//! * [`presets`] — ready-made `ibm_5q` / `ibm_7q` / `aer_like` devices;
//! * [`executor`] — parallel fan-out of tomography jobs (rayon) and a
//!   crossbeam worker-pool dispatch queue.
//!
//! ```
//! use qcut_device::prelude::*;
//! use qcut_circuit::circuit::Circuit;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let backend = aer_like(7);
//! let result = backend.run(&bell, 1000).unwrap();
//! assert_eq!(result.counts.total(), 1000);
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod executor;
pub mod fault;
pub mod ideal;
pub mod noisy;
pub mod pool;
pub mod presets;
pub mod timing;

/// Common re-exports.
pub mod prelude {
    pub use crate::backend::{
        Backend, BackendError, BatchRun, BatchStats, ExecutionResult, JobResult, JobSpec,
        TransientKind,
    };
    pub use crate::executor::{run_parallel, run_sequential, BatchResult, Job, JobQueue};
    pub use crate::fault::FaultInjectingBackend;
    pub use crate::ideal::IdealBackend;
    pub use crate::noisy::NoisyBackend;
    pub use crate::pool::{BackendPool, MemberInfo, Placement, PlacementPolicy};
    pub use crate::presets::{aer_like, ibm_5q, ibm_7q, very_noisy};
    pub use crate::timing::TimingModel;
}

pub use prelude::*;
